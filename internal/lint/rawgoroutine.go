package lint

import (
	"go/ast"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// RawGoroutineAnalyzer flags `go` statements in the mining packages
// outside the sanctioned concurrency primitives. All parallelism in the
// miner is supposed to flow through the worker-pool helpers
// (internal/core/parallel.go's parallelFor and the clique fan-out in
// internal/graph): those merge per-task results in task order, which is
// what makes the output bit-identical at any worker count. A goroutine
// spawned anywhere else has no such merge discipline and is exactly how
// ordering and data races sneak in.
//
// internal/server is also sanctioned: a serving layer legitimately
// spawns goroutines that never touch mining results — singleflight
// executions raced against request deadlines — and its determinism is
// covered instead by the served-vs-CLI differential tests. So is
// internal/storage: the segment store's single-writer WAL goroutine
// and background compactor are the concurrency design (all mutation
// serialises through one owner), and the crash/differential suite
// covers their correctness.
//
// Sanctioned locations are configured with -sanction, a comma-separated
// list of package-path suffixes ("internal/graph") or file suffixes
// ("internal/core/parallel.go"). One-off intentional goroutines can be
// annotated `//lint:allow rawgoroutine`.
var RawGoroutineAnalyzer = &analysis.Analyzer{
	Name:     "rawgoroutine",
	Doc:      "flags goroutines spawned outside the sanctioned worker-pool helpers",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runRawGoroutine,
}

var (
	rawGoroutineScope    string
	rawGoroutineSanction string
)

func init() {
	RawGoroutineAnalyzer.Flags.StringVar(&rawGoroutineScope, "scope",
		`(^|/)internal/`,
		"regexp of package import paths the analyzer applies to")
	RawGoroutineAnalyzer.Flags.StringVar(&rawGoroutineSanction, "sanction",
		"internal/core/parallel.go,internal/graph,internal/server,internal/storage,internal/cluster",
		"comma-separated package or file suffixes where goroutines are sanctioned")
}

func runRawGoroutine(pass *analysis.Pass) (interface{}, error) {
	if !compileScope(rawGoroutineScope)(pkgPath(pass)) {
		return nil, nil
	}
	sanctions := strings.Split(rawGoroutineSanction, ",")

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := newDirectives(pass)

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		gs := n.(*ast.GoStmt)
		if isTestFile(pass, gs.Pos()) || isSanctioned(pass, sanctions, gs) {
			return
		}
		report(pass, dirs, "rawgoroutine", gs.Pos(),
			"raw goroutine outside the sanctioned worker pools; route the fan-out through parallelFor (internal/core/parallel.go) so results merge in task order")
	})
	return nil, nil
}

// isSanctioned matches the goroutine's location against the sanction
// list: an entry ending in ".go" must suffix-match pkgpath/filename,
// any other entry must suffix-match the package path.
func isSanctioned(pass *analysis.Pass, sanctions []string, gs *ast.GoStmt) bool {
	pkg := pkgPath(pass)
	file := pkg + "/" + filepath.Base(pass.Fset.Position(gs.Pos()).Filename)
	for _, s := range sanctions {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if strings.HasSuffix(s, ".go") {
			if strings.HasSuffix(file, s) {
				return true
			}
		} else if pkg == s || strings.HasSuffix(pkg, "/"+s) || strings.HasSuffix(pkg, s) {
			return true
		}
	}
	return false
}
