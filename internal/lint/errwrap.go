package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ErrWrapAnalyzer guards the error surface the serving layer promises:
// sentinel errors (core.ErrBadQuery, summary.ErrCorrupt, io.EOF, ...)
// classified with errors.Is so wrapping never breaks the HTTP status
// mapping, and wrap chains that actually carry the sentinel.
//
// Two shapes are flagged:
//
//   - `err == Sentinel` / `err != Sentinel` (and `switch err { case
//     Sentinel }`) where Sentinel is a package-level error variable.
//     The moment any layer wraps the error with fmt.Errorf("...: %w"),
//     the comparison silently turns false and a 400-class failure is
//     served as a 500 — use errors.Is.
//   - fmt.Errorf formatting an error value with %v/%s/%q instead of
//     %w. The message text is identical, but the unwrap chain is cut:
//     errors.Is/As above this call stop seeing everything below it.
//
// Deliberately chain-cutting wraps (error text recorded in a note that
// must not carry the cause's identity) take `//lint:allow errwrap`.
var ErrWrapAnalyzer = &analysis.Analyzer{
	Name:     "errwrap",
	Doc:      "flags sentinel errors compared with == and fmt.Errorf verbs that cut the unwrap chain",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runErrWrap,
}

var errWrapScope string

func init() {
	ErrWrapAnalyzer.Flags.StringVar(&errWrapScope, "scope",
		`(^|/)internal/`,
		"regexp of package import paths the analyzer applies to")
}

func runErrWrap(pass *analysis.Pass) (interface{}, error) {
	if !compileScope(errWrapScope)(pkgPath(pass)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := newDirectives(pass)

	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.SwitchStmt)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		if isTestFile(pass, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if name, ok := sentinelError(pass, side); ok {
					report(pass, dirs, "errwrap", n.Pos(),
						"%s compared with %s: a wrapped error never matches; use errors.Is", name, n.Op)
					return
				}
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return
			}
			tv, ok := pass.TypesInfo.Types[n.Tag]
			if !ok || tv.Type == nil || !types.Implements(tv.Type, errorInterface) {
				return
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if name, ok := sentinelError(pass, e); ok {
						report(pass, dirs, "errwrap", e.Pos(),
							"%s matched with switch-case equality: a wrapped error never matches; use errors.Is", name)
					}
				}
			}
		case *ast.CallExpr:
			if path, name, ok := pkgFunc(pass, n); ok && path == "fmt" && name == "Errorf" {
				checkErrorfChain(pass, dirs, n)
			}
		}
	})
	return nil, nil
}

// sentinelError reports whether e names a package-level error variable
// (the sentinel shape: var ErrX = errors.New(...), io.EOF, ...). Local
// error variables and nil are not sentinels.
func sentinelError(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var obj types.Object
	var label string
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
		label = e.Name
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
		if id, ok := e.X.(*ast.Ident); ok {
			label = id.Name + "." + e.Sel.Name
		} else {
			label = e.Sel.Name
		}
	default:
		return "", false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !types.Implements(v.Type(), errorInterface) {
		return "", false
	}
	return label, true
}

// checkErrorfChain flags error-typed arguments of fmt.Errorf bound to a
// verb other than %w.
func checkErrorfChain(pass *analysis.Pass, dirs *directives, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	for _, v := range formatVerbs(constant.StringVal(tv.Value)) {
		if v.verb == 'w' {
			continue
		}
		argIdx := 1 + v.arg
		if argIdx >= len(call.Args) {
			break
		}
		arg := call.Args[argIdx]
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || !types.Implements(at.Type, errorInterface) {
			continue
		}
		report(pass, dirs, "errwrap", arg.Pos(),
			"error formatted with %%%c cuts the unwrap chain (message is identical with %%w, but errors.Is/As stop seeing this error)", v.verb)
	}
}

// fmtVerb is one %-verb of a format string and the 0-based argument
// index it consumes.
type fmtVerb struct {
	arg  int
	verb byte
}

// formatVerbs scans a Printf-style format string, tracking '*'
// width/precision arguments and explicit [n] indexes.
func formatVerbs(format string) []fmtVerb {
	var out []fmtVerb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	scan:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9'):
				// flags, width, precision digits
			case c == '*':
				arg++ // dynamic width/precision consumes an argument
			case c == '[':
				// explicit argument index: %[2]v
				j := i + 1
				n := 0
				for j < len(format) && format[j] >= '0' && format[j] <= '9' {
					n = n*10 + int(format[j]-'0')
					j++
				}
				if j < len(format) && format[j] == ']' && n > 0 {
					arg = n - 1
					i = j
				} else {
					break scan // malformed; bail on this verb
				}
			case c == '%':
				break scan // literal %%, no argument
			default:
				out = append(out, fmtVerb{arg: arg, verb: c})
				arg++
				break scan
			}
		}
	}
	return out
}
