// Package lint hosts the darlint analyzers: custom go/analysis passes
// that mechanically enforce the miner's determinism, concurrency and
// serving invariants (bit-identical DAR output at any worker count; a
// serving layer that cannot silently corrupt its cache keys, error
// surface or latency profile). The ten analyzers are
//
//   - maporder:     map iteration feeding ordered output without a sort
//   - nondeterm:    time.Now / global math/rand / os.Getenv in result paths
//   - rawgoroutine: goroutines spawned outside the sanctioned worker pools
//   - atomicmix:    sync/atomic and plain access mixed on the same variable
//   - keycoverage:  QueryOptions fields missing from CanonicalKey or
//     ParseCanonicalKey (a partial cache key collides distinct queries)
//   - errwrap:      sentinel errors compared with == instead of errors.Is,
//     and fmt.Errorf %v/%s on error values that breaks the unwrap chain
//   - ctxflow:      context.Background/TODO or a discarded r.Context()
//     in serving request paths (timeouts and aborts stop propagating)
//   - lockhold:     channel ops, file or network I/O while a sync.Mutex
//     or RWMutex is held (the catalog/cache deadlock-latency shape)
//   - wgbalance:    sync.WaitGroup Add inside the spawned goroutine, or
//     Done not deferred (Wait races or deadlocks)
//   - retrybound:   time.Sleep inside an unbounded loop in the cluster
//     coordinator (retries must be capped timers selected against
//     ctx.Done, never an uncancellable busy-wait)
//
// A finding can be suppressed with a `//lint:allow <analyzer> [reason]`
// comment on the offending line or the line directly above it; the
// repo-wide count of such suppressions is pinned per analyzer by
// lint_budget.json at the module root (`darlint -budget`). Functions
// whose doc comment contains a `//lint:telemetry` line are exempt from
// nondeterm (for timing / telemetry code whose values never reach the
// mined rule set).
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers is the full darlint suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	MapOrderAnalyzer,
	NonDetermAnalyzer,
	RawGoroutineAnalyzer,
	AtomicMixAnalyzer,
	KeyCoverageAnalyzer,
	ErrWrapAnalyzer,
	CtxFlowAnalyzer,
	LockHoldAnalyzer,
	WGBalanceAnalyzer,
	RetryBoundAnalyzer,
}

const (
	allowPrefix  = "//lint:allow"
	telemetryTag = "//lint:telemetry"
)

// directives indexes the lint comments of one pass: per-file allow
// lines and the spans of functions tagged //lint:telemetry.
type directives struct {
	fset *token.FileSet
	// allow maps file name -> line -> analyzer names allowed there.
	allow map[string]map[int]map[string]bool
	// telemetry holds the body spans of tagged functions.
	telemetry []span
}

type span struct{ start, end token.Pos }

func newDirectives(pass *analysis.Pass) *directives {
	d := &directives{
		fset:  pass.Fset,
		allow: make(map[string]map[int]map[string]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := d.fset.Position(c.Pos())
				lines := d.allow[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					d.allow[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				for _, name := range strings.Split(fields[0], ",") {
					names[name] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), telemetryTag) {
					d.telemetry = append(d.telemetry, span{fn.Pos(), fn.Body.End()})
					break
				}
			}
		}
	}
	return d
}

// allowed reports whether analyzer name is suppressed at pos by an
// allow comment on the same line or the line directly above.
func (d *directives) allowed(name string, pos token.Pos) bool {
	p := d.fset.Position(pos)
	lines := d.allow[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		if names := lines[line]; names[name] {
			return true
		}
	}
	return false
}

// inTelemetry reports whether pos falls inside a //lint:telemetry
// tagged function.
func (d *directives) inTelemetry(pos token.Pos) bool {
	for _, s := range d.telemetry {
		if s.start <= pos && pos < s.end {
			return true
		}
	}
	return false
}

// report emits a diagnostic unless an allow directive suppresses it.
func report(pass *analysis.Pass, d *directives, name string, pos token.Pos, format string, args ...interface{}) {
	if d.allowed(name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// isTestFile reports whether the file holding pos is a _test.go file.
// The determinism invariants protect the mining result paths; tests are
// free to use seeded randomness, wall clocks and ad-hoc goroutines.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// compileScope turns a -scope / -exempt flag value into a matcher over
// package import paths. An empty pattern matches nothing.
func compileScope(pattern string) func(string) bool {
	if pattern == "" {
		return func(string) bool { return false }
	}
	re := regexp.MustCompile(pattern)
	return func(path string) bool { return re.MatchString(path) }
}

// pkgPath returns the import path of the package under analysis with
// any " [foo.test]" variant suffix trimmed, so scope matching behaves
// identically for a package and its test variant.
func pkgPath(pass *analysis.Pass) string {
	path := pass.Pkg.Path()
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}

// methodOn resolves a call expression to (package path, receiver type
// name, method name) when it is a method call whose method is declared
// on a named type (embedding included: t.Lock() on a struct embedding
// sync.Mutex resolves to ("sync", "Mutex", "Lock")). ok=false for
// plain function calls and methods of unnamed receivers.
func methodOn(pass *analysis.Pass, call *ast.CallExpr) (path, recv, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), fn.Name(), true
}

// errorInterface is the built-in error interface, for "does this type
// implement error" checks.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// pkgFunc resolves a call expression to (package path, function name)
// when it is a direct call of a package-level function, e.g.
// time.Now() or atomic.AddInt64(...). It returns ok=false for method
// calls and locally shadowed package names.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (path, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
