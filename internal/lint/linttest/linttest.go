// Package linttest is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis/analysistest (which is not vendored
// with the toolchain, and this repo builds offline). It loads a fixture
// package from testdata/src/<path>, type-checks it against the standard
// library via the source importer, runs an analyzer together with its
// Requires closure, and compares the reported diagnostics against
// `// want "regexp"` comments in the fixture — the same convention
// analysistest uses, so fixtures stay portable.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes each fixture package under filepath.Join(testdata,
// "src", path) with a and reports mismatches between diagnostics and
// the fixtures' want comments as test errors. The fixture path doubles
// as the package import path, so analyzers that scope by package path
// (e.g. on "internal/") see the path spelled in the fixture tree.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, p := range paths {
		p := p
		t.Run(strings.ReplaceAll(p, "/", "_"), func(t *testing.T) {
			t.Helper()
			runPackage(t, testdata, a, p)
		})
	}
}

func runPackage(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in fixture %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]interface{})
	var run func(an *analysis.Analyzer) error
	run = func(an *analysis.Analyzer) error {
		if _, done := results[an]; done {
			return nil
		}
		for _, req := range an.Requires {
			if err := run(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   make(map[*analysis.Analyzer]interface{}),
			Report: func(d analysis.Diagnostic) {
				if an == a { // prerequisite passes don't contribute findings
					diags = append(diags, d)
				}
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		for _, req := range an.Requires {
			pass.ResultOf[req] = results[req]
		}
		res, err := an.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", an.Name, err)
		}
		results[an] = res
		return nil
	}
	if err := run(a); err != nil {
		t.Fatal(err)
	}

	checkDiagnostics(t, fset, files, diags)
}

// expectation is one `// want "re"` clause: a regexp expected to match
// a diagnostic on its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the `...` and "..." literals from a want clause.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '`':
			if j := strings.IndexByte(s[i+1:], '`'); j >= 0 {
				out = append(out, s[i:i+j+2])
				i += j + 1
			}
		case '"':
			for j := i + 1; j < len(s); j++ {
				if s[j] == '\\' {
					j++
					continue
				}
				if s[j] == '"' {
					out = append(out, s[i:j+1])
					i = j
					break
				}
			}
		}
	}
	return out
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
