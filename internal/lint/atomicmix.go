package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// AtomicMixAnalyzer flags a variable (typically a struct field) that is
// accessed through sync/atomic in one place and with a plain load or
// store in another — the exact shape of the DiskRelation scan-counter
// race fixed in PR 1, where a counter was atomically incremented by
// parallel scanners but read with a plain load. Mixing the two defeats
// the atomicity guarantee entirely: either every access goes through
// sync/atomic (or an atomic.Int64-style typed field), or none do.
//
// Initialization in a composite literal is exempt (the value is not yet
// shared); anything else needs `//lint:allow atomicmix`.
var AtomicMixAnalyzer = &analysis.Analyzer{
	Name:     "atomicmix",
	Doc:      "flags variables accessed both via sync/atomic and with plain loads/stores",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAtomicMix,
}

// atomicFuncPrefixes match the sync/atomic package-level operations
// whose first argument is a *T pointing at the guarded variable.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func runAtomicMix(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := newDirectives(pass)

	// First pass: every variable whose address is taken as the first
	// argument of a sync/atomic call, and the spans of those arguments
	// (so the second pass does not count them as plain accesses).
	atomicVars := make(map[types.Object]token.Pos) // var -> first atomic-use position
	atomicArgSpans := []span{}
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		path, name, ok := pkgFunc(pass, call)
		if !ok || path != "sync/atomic" || !hasAnyPrefix(name, atomicFuncPrefixes) {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		un, ok := call.Args[0].(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return
		}
		obj := addrTarget(pass, un.X)
		if obj == nil {
			return
		}
		if _, exists := atomicVars[obj]; !exists {
			atomicVars[obj] = call.Pos()
		}
		atomicArgSpans = append(atomicArgSpans, span{un.Pos(), un.End()})
	})
	if len(atomicVars) == 0 {
		return nil, nil
	}

	inAtomicArg := func(pos token.Pos) bool {
		for _, s := range atomicArgSpans {
			if s.start <= pos && pos < s.end {
				return true
			}
		}
		return false
	}

	// Second pass: plain reads/writes of the same variables. Collect
	// then report in position order so output is stable.
	type finding struct {
		pos token.Pos
		obj types.Object
	}
	var findings []finding
	ins.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		id := n.(*ast.Ident)
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, tracked := atomicVars[obj]; !tracked {
			return true
		}
		if inAtomicArg(id.Pos()) || isTestFile(pass, id.Pos()) {
			return true
		}
		// A field name used as a composite-literal key is initialization
		// before the value can be shared, not a racy access.
		if isCompositeLitKey(stack, id) {
			return true
		}
		findings = append(findings, finding{id.Pos(), obj})
		return true
	})
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		report(pass, dirs, "atomicmix", f.pos,
			"%s is accessed via sync/atomic at %s but with a plain load/store here; make every access atomic (or use an atomic.Int64-style typed field)",
			f.obj.Name(), pass.Fset.Position(atomicVars[f.obj]))
	}
	return nil, nil
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// addrTarget resolves &x or &s.f to the variable being guarded.
func addrTarget(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.ObjectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.ObjectOf(e.Sel).(*types.Var); ok {
			return v
		}
	case *ast.ParenExpr:
		return addrTarget(pass, e.X)
	case *ast.IndexExpr:
		// &arr[i] guards one element; per-element tracking would need
		// alias analysis, so stay conservative and skip.
	}
	return nil
}

// isCompositeLitKey reports whether id is the key of a KeyValueExpr
// directly inside a composite literal (S{counter: 0}).
func isCompositeLitKey(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 3 {
		return false
	}
	kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, ok = stack[len(stack)-3].(*ast.CompositeLit)
	return ok
}
