package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CtxFlowAnalyzer keeps request contexts flowing through the serving
// layer. dard's latency bounds are contractual — per-request timeouts
// answer 504, client disconnects answer 503 — and both depend on every
// request path deriving its context from r.Context(). A
// context.Background() (or context.TODO()) spliced in anywhere below
// the handler detaches the work from the caller: timeouts stop
// propagating, disconnected clients keep burning CPU, and graceful
// drain can no longer see the request.
//
// Flagged inside the scoped packages (internal/server by default):
//
//   - calls to context.Background() or context.TODO() in non-test code;
//   - a call returning context.Context evaluated as a bare statement
//     (an r.Context() whose result is dropped — the call does nothing);
//   - http.NewRequest, which builds a context-less outbound request;
//     use http.NewRequestWithContext.
//
// Detached executions that are deliberate (the singleflight keeps a
// timed-out query running so its result can land in the cache) don't
// need contexts at all and are not flagged; a genuinely intentional
// Background takes `//lint:allow ctxflow <why>`.
var CtxFlowAnalyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      "flags detached contexts (context.Background/TODO, dropped r.Context) in serving request paths",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxFlow,
}

var ctxFlowScope string

func init() {
	CtxFlowAnalyzer.Flags.StringVar(&ctxFlowScope, "scope",
		`(^|/)internal/server(/|$)`,
		"regexp of package import paths the analyzer applies to")
}

func runCtxFlow(pass *analysis.Pass) (interface{}, error) {
	if !compileScope(ctxFlowScope)(pkgPath(pass)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := newDirectives(pass)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.ExprStmt)(nil)}, func(n ast.Node) {
		if isTestFile(pass, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			path, name, ok := pkgFunc(pass, n)
			if !ok {
				return
			}
			switch {
			case path == "context" && (name == "Background" || name == "TODO"):
				report(pass, dirs, "ctxflow", n.Pos(),
					"context.%s detaches this path from the request: timeouts and client-disconnect aborts stop propagating; derive from r.Context() (or the incoming ctx)", name)
			case path == "net/http" && name == "NewRequest":
				report(pass, dirs, "ctxflow", n.Pos(),
					"http.NewRequest builds a context-less request; use http.NewRequestWithContext so the call is cancelable")
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return
			}
			if tv, ok := pass.TypesInfo.Types[call]; ok && isContextType(tv.Type) {
				report(pass, dirs, "ctxflow", n.Pos(),
					"context-returning call evaluated as a statement: the context is dropped, so nothing downstream observes cancellation")
			}
		}
	})
	return nil, nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
