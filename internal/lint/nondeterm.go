package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// NonDetermAnalyzer bans the three classic sources of run-to-run and
// environment-to-environment drift — time.Now, the global (unseeded)
// math/rand generator, and os.Getenv — inside the mining result paths
// (the internal/... packages that produce Phase I/II output).
//
// Allowed without annotation:
//   - seeded generators: rand.New(rand.NewSource(seed)) and all methods
//     on the resulting *rand.Rand;
//   - the timing idiom `start := time.Now(); ...; time.Since(start)`
//     (or start.Sub / end.Sub(start)), whose wall-clock values feed
//     Stats durations but never the rule set;
//   - whole functions tagged //lint:telemetry in their doc comment;
//   - generator / experiment-harness packages exempted by -exempt.
//
// Anything else needs a `//lint:allow nondeterm` comment.
var NonDetermAnalyzer = &analysis.Analyzer{
	Name:     "nondeterm",
	Doc:      "bans time.Now, unseeded math/rand and os.Getenv in mining result paths",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runNonDeterm,
}

var (
	nonDetermScope  string
	nonDetermExempt string
)

func init() {
	NonDetermAnalyzer.Flags.StringVar(&nonDetermScope, "scope",
		`(^|/)internal/`,
		"regexp of package import paths the analyzer applies to")
	NonDetermAnalyzer.Flags.StringVar(&nonDetermExempt, "exempt",
		`(^|/)internal/(experiments|datagen)(/|$)`,
		"regexp of package import paths exempted from the scope")
}

// bannedRandFuncs are the package-level math/rand (and /v2) functions
// that draw from the shared, unseeded global source. Constructors
// (New, NewSource, NewZipf, NewPCG, NewChaCha8) are fine: a *rand.Rand
// built from an explicit seed is the sanctioned way to randomize.
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint": true,
	"Uint32N": true, "Uint64N": true,
}

var bannedOSFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

func runNonDeterm(pass *analysis.Pass) (interface{}, error) {
	inScope := compileScope(nonDetermScope)
	exempt := compileScope(nonDetermExempt)
	path := pkgPath(pass)
	if !inScope(path) || exempt(path) {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := newDirectives(pass)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		if isTestFile(pass, call.Pos()) || dirs.inTelemetry(call.Pos()) {
			return true
		}
		fpath, fname, ok := pkgFunc(pass, call)
		if !ok {
			return true
		}
		switch {
		case fpath == "time" && fname == "Now":
			if isTimingOnly(pass, call, stack) {
				return true
			}
			report(pass, dirs, "nondeterm", call.Pos(),
				"time.Now in a result path: wall-clock values must not influence mined rules (tag the function //lint:telemetry for pure timing code)")
		case (fpath == "math/rand" || fpath == "math/rand/v2") && bannedRandFuncs[fname]:
			report(pass, dirs, "nondeterm", call.Pos(),
				"rand.%s draws from the global unseeded generator; use rand.New(rand.NewSource(seed)) so runs are reproducible", fname)
		case fpath == "os" && bannedOSFuncs[fname]:
			report(pass, dirs, "nondeterm", call.Pos(),
				"os.%s in a result path makes mining output depend on the environment; plumb the value through Options instead", fname)
		}
		return true
	})
	return nil, nil
}

// isTimingOnly recognizes the telemetry idiom: the time.Now() value is
// (a) immediately the receiver of .Sub, or (b) bound to a variable that
// the enclosing function later passes to time.Since or uses in a .Sub
// call. Such values measure durations; they cannot perturb rule output.
func isTimingOnly(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) >= 2 {
		if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == call && sel.Sel.Name == "Sub" {
			return true
		}
	}
	// Find `v := time.Now()` directly above the call.
	var obj types.Object
	if len(stack) >= 2 {
		if as, ok := stack[len(stack)-2].(*ast.AssignStmt); ok {
			for i, rhs := range as.Rhs {
				if rhs == call && i < len(as.Lhs) {
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						obj = pass.TypesInfo.ObjectOf(id)
					}
				}
			}
		}
	}
	if obj == nil {
		return false
	}
	fn := enclosingFuncBody(stack)
	if fn == nil {
		return false
	}
	timing := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if timing {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if p, f, ok := pkgFunc(pass, c); ok && p == "time" && f == "Since" {
			for _, a := range c.Args {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					timing = true
					return false
				}
			}
			return true
		}
		if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" {
			if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				timing = true
				return false
			}
			for _, a := range c.Args {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					timing = true
					return false
				}
			}
		}
		return true
	})
	return timing
}
