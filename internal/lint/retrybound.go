package lint

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// RetryBoundAnalyzer flags time.Sleep inside an unbounded loop — the
// classic runaway-retry shape. The cluster coordinator's dispatch and
// probe loops must stay cancellable and leak-free: a bare
// `for { ...; time.Sleep(d) }` ignores context cancellation, holds its
// goroutine through shutdown, and turns a dead worker into an eternal
// busy-wait. The sanctioned delay shape is a time.NewTimer (or
// time.After) selected against ctx.Done, with attempts capped by the
// scheduler (see internal/cluster's `later` helper and backoffFor).
//
// A loop counts as bounded when it is a range loop or a full
// three-clause `for init; cond; post` counted loop. `for {}` and
// `for cond {}` are treated as unbounded: the condition alone proves
// nothing about progress, and every real retry loop in this repo that
// looked like that was missing its attempt cap. The walk stops at
// function-literal boundaries — a sleep inside a goroutine body is
// judged against that body's own loops, not the spawner's.
//
// A deliberate, provably-terminating sleep can carry
// `//lint:allow retrybound <why>`.
var RetryBoundAnalyzer = &analysis.Analyzer{
	Name:     "retrybound",
	Doc:      "flags time.Sleep inside unbounded loops (retries must be capped timers selected against ctx.Done)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runRetryBound,
}

var retryBoundScope string

func init() {
	RetryBoundAnalyzer.Flags.StringVar(&retryBoundScope, "scope",
		`(^|/)internal/cluster(/|$)`,
		"regexp of package import paths the analyzer applies to")
}

func runRetryBound(pass *analysis.Pass) (interface{}, error) {
	if !compileScope(retryBoundScope)(pkgPath(pass)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := newDirectives(pass)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || isTestFile(pass, n.Pos()) {
			return true
		}
		call := n.(*ast.CallExpr)
		if path, name, ok := pkgFunc(pass, call); !ok || path != "time" || name != "Sleep" {
			return true
		}
		loop, ok := innermostLoop(stack)
		if !ok || boundedLoop(loop) {
			return true
		}
		report(pass, dirs, "retrybound", call.Pos(),
			"time.Sleep inside an unbounded %s loop: uncancellable busy-wait; cap the attempts and delay with a timer selected against ctx.Done", loopKind(loop))
		return true
	})
	return nil, nil
}

// innermostLoop returns the nearest enclosing for/range statement of
// the node at the top of stack, not crossing a function-literal
// boundary (a sleep inside a closure belongs to the closure's loops).
func innermostLoop(stack []ast.Node) (ast.Stmt, bool) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return nil, false
		case *ast.ForStmt:
			return n, true
		case *ast.RangeStmt:
			return n, true
		}
	}
	return nil, false
}

// boundedLoop reports whether the loop's iteration count is evidently
// finite: a range loop, or a counted loop with all three clauses.
func boundedLoop(loop ast.Stmt) bool {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		return true
	case *ast.ForStmt:
		return l.Init != nil && l.Cond != nil && l.Post != nil
	}
	return false
}

// loopKind names the loop shape for the report.
func loopKind(loop ast.Stmt) string {
	if f, ok := loop.(*ast.ForStmt); ok && f.Cond == nil {
		return "for {}"
	}
	return "for cond {}"
}
