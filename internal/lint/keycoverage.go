package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// KeyCoverageAnalyzer is the cache-key totality check: in any package
// that declares the query-options struct (core.QueryOptions by
// default) together with its canonical rendering method (CanonicalKey)
// and its inverse (ParseCanonicalKey), every exported field of the
// struct must be read by the renderer and assigned by the parser.
//
// The invariant is load-bearing for serving correctness: the dard
// result cache and singleflight group key on CanonicalKey, so a query
// mode that ships without an arm in the key renderer makes two
// *different* queries share one cache entry — stale or plain wrong
// results served with full confidence. The parser side keeps the key
// an injective, invertible encoding (the FuzzQueryOptions round-trip
// relies on it). Both halves used to be guarded only by hand-written
// tests; this analyzer makes "add a field, forget the key" a compile
// failure.
//
// A field that is deliberately outside the key (execution-only knobs
// like Workers, proven result-invariant by the differential suites)
// carries a `//lint:allow keycoverage <why>` on its declaration line.
// The check is intraprocedural: the renderer and parser must touch the
// fields directly, which is also the only shape that keeps the key
// readable.
var KeyCoverageAnalyzer = &analysis.Analyzer{
	Name: "keycoverage",
	Doc:  "checks every exported query-options field is covered by both the canonical key renderer and its parser",
	Run:  runKeyCoverage,
}

var (
	keyCoverageType   string
	keyCoverageRender string
	keyCoverageParse  string
)

func init() {
	KeyCoverageAnalyzer.Flags.StringVar(&keyCoverageType, "type",
		"QueryOptions", "name of the options struct whose fields the key must cover")
	KeyCoverageAnalyzer.Flags.StringVar(&keyCoverageRender, "render",
		"CanonicalKey", "name of the method rendering the canonical key")
	KeyCoverageAnalyzer.Flags.StringVar(&keyCoverageParse, "parse",
		"ParseCanonicalKey", "name of the function inverting the canonical key")
}

func runKeyCoverage(pass *analysis.Pass) (interface{}, error) {
	obj, ok := pass.Pkg.Scope().Lookup(keyCoverageType).(*types.TypeName)
	if !ok {
		return nil, nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}

	var render, parse *ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && fd.Name.Name == keyCoverageRender && recvIsType(pass, fd, obj) {
				render = fd
			}
			if fd.Recv == nil && fd.Name.Name == keyCoverageParse {
				parse = fd
			}
		}
	}
	if render == nil && parse == nil {
		return nil, nil // no canonical-key surface in this package
	}
	dirs := newDirectives(pass)
	if render == nil {
		report(pass, dirs, "keycoverage", parse.Pos(),
			"%s exists but %s has no %s method: the canonical key cannot be checked for field coverage", keyCoverageParse, keyCoverageType, keyCoverageRender)
		return nil, nil
	}
	if parse == nil {
		report(pass, dirs, "keycoverage", render.Pos(),
			"%s.%s exists but there is no %s: the canonical key is not invertible", keyCoverageType, keyCoverageRender, keyCoverageParse)
		return nil, nil
	}

	reads := fieldUses(pass, render.Body, st, false)
	writes := fieldUses(pass, parse.Body, st, true)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if !reads[f] {
			report(pass, dirs, "keycoverage", f.Pos(),
				"exported %s field %s is not read by %s: two queries differing only in it would collide on one cache key", keyCoverageType, f.Name(), keyCoverageRender)
		}
		if !writes[f] {
			report(pass, dirs, "keycoverage", f.Pos(),
				"exported %s field %s is never assigned by %s: the canonical key is not invertible over it", keyCoverageType, f.Name(), keyCoverageParse)
		}
	}
	return nil, nil
}

// recvIsType reports whether fd's receiver base type is the given named
// type (pointer receivers included).
func recvIsType(pass *analysis.Pass, fd *ast.FuncDecl, tn *types.TypeName) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == tn
}

// fieldUses walks body and marks which fields of st are touched: with
// write=false any selector read of the field counts; with write=true
// only a selector on the left-hand side of an assignment does.
func fieldUses(pass *analysis.Pass, body *ast.BlockStmt, st *types.Struct, write bool) map[*types.Var]bool {
	fields := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	used := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() && fields[v] {
			used[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if write {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					mark(lhs)
				}
			}
			return true
		}
		if e, ok := n.(ast.Expr); ok {
			mark(e)
		}
		return true
	})
	return used
}
