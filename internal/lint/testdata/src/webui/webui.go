// Negative fixture for nondeterm: not under internal/, so out of the
// result-path scope — nothing here may be flagged.
package webui

import (
	"os"
	"time"
)

func Banner() string {
	return time.Now().Format(time.RFC3339) + " " + os.Getenv("USER")
}
