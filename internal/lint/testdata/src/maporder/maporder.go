// Fixture for the maporder analyzer: map iterations whose order can
// leak into output must be flagged unless sorted or annotated.
package maporder

import (
	"fmt"
	"sort"
)

// appendNoSort leaks map order into the returned slice.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys accumulates map-iteration results but is never deterministically sorted`
	}
	return keys
}

// appendThenSort is the sanctioned collect-and-sort idiom.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendThenSortSlice sorts through sort.Slice with a comparator.
func appendThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// appendThenHelperSort recognizes local sort helpers by name.
func appendThenHelperSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sortInts(vals)
	return vals
}

func sortInts(v []int) { sort.Ints(v) }

// fieldAppendNoSort flags appends through a struct field too.
type sink struct{ rules []string }

func (s *sink) fieldAppendNoSort(m map[string]bool) {
	for k := range m {
		s.rules = append(s.rules, k) // want `s\.rules accumulates map-iteration results but is never deterministically sorted`
	}
}

// chanSend leaks map order through a channel.
func chanSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// printDuringRange emits text in map order.
func printDuringRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside map iteration prints in Go's randomized map order`
	}
}

// allowed demonstrates the escape hatch for order-insensitive uses.
func allowed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow maporder dedup scratch, order never emitted
	}
	return keys
}

// localScratch appends to a per-iteration temporary: no cross-item
// order leaks, so no finding.
func localScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// sliceRange is not a map iteration at all.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// reduction aggregates commutatively without building output: fine.
func reduction(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
