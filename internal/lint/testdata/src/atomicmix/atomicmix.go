// Fixture for the atomicmix analyzer: variables touched both through
// sync/atomic and with plain loads/stores.
package atomicmix

import "sync/atomic"

// scanner mixes atomic increments with a plain read — the DiskRelation
// scan-counter bug shape.
type scanner struct {
	scans int64
	name  string
}

func (s *scanner) bump() {
	atomic.AddInt64(&s.scans, 1)
}

func (s *scanner) busy() bool {
	return s.scans > 0 // want `scans is accessed via sync/atomic at .* but with a plain load/store here`
}

func (s *scanner) reset() {
	s.scans = 0 // want `scans is accessed via sync/atomic at .* but with a plain load/store here`
}

// Composite-literal initialization happens before the value is shared:
// not flagged.
func newScanner() *scanner {
	return &scanner{scans: 0, name: "disk"}
}

// consistent only ever uses atomic accesses: not flagged.
type consistent struct {
	hits int64
}

func (c *consistent) bump()        { atomic.AddInt64(&c.hits, 1) }
func (c *consistent) count() int64 { return atomic.LoadInt64(&c.hits) }

// plainOnly never uses sync/atomic, so plain access is fine.
type plainOnly struct {
	n int64
}

func (p *plainOnly) incr() { p.n++ }

// packageCounter mixes on a package-level var: also flagged.
var packageCounter int64

func bumpPackageCounter() {
	atomic.AddInt64(&packageCounter, 1)
}

func readPackageCounter() int64 {
	return packageCounter // want `packageCounter is accessed via sync/atomic at .* but with a plain load/store here`
}

// allowed demonstrates the escape hatch (single-threaded teardown).
func (s *scanner) final() int64 {
	return s.scans //lint:allow atomicmix all scanners joined before teardown
}

// The name field is untracked: plain access never flagged.
func (s *scanner) label() string { return s.name }
