// Fixture for the errwrap analyzer: sentinel errors compared with ==
// and fmt.Errorf verbs that cut the unwrap chain.
package errwrap

import (
	"errors"
	"fmt"
	"io"
)

// ErrBadInput is the repo's sentinel shape: a package-level error
// variable that serving layers classify with errors.Is.
var ErrBadInput = errors.New("bad input")

var errInternal = errors.New("internal")

// Classify mixes the flagged shapes.
func Classify(err error) int {
	if err == ErrBadInput { // want `ErrBadInput compared with ==`
		return 400
	}
	if err != errInternal { // want `errInternal compared with !=`
		return 0
	}
	switch err {
	case io.EOF: // want `io.EOF matched with switch-case equality`
		return 204
	}
	return 500
}

// ClassifyWrapped is the sanctioned shape: errors.Is sees through
// wrapping, and nil comparisons are not sentinel comparisons.
func ClassifyWrapped(err error) int {
	if err == nil {
		return 200
	}
	if errors.Is(err, ErrBadInput) {
		return 400
	}
	return 500
}

// Wrap loses the chain with %v; WrapWell keeps it with %w (the message
// text is identical).
func Wrap(err error) error {
	return fmt.Errorf("reading shard: %v", err) // want `error formatted with %v cuts the unwrap chain`
}

func WrapWell(err error) error {
	return fmt.Errorf("reading shard: %w", err)
}

// WrapBoth wraps one error and flattens another: only the %v arm is
// flagged — even alongside a %w, that particular chain is cut.
func WrapBoth(cause error) error {
	return fmt.Errorf("canonical key: %v: %w", cause, ErrBadInput) // want `error formatted with %v cuts the unwrap chain`
}

// NonErrorVerbs format non-error values; nothing to flag.
func NonErrorVerbs(n int, name string) error {
	return fmt.Errorf("group %q has %d clusters", name, n)
}

// DeliberateFlatten records the cause's text in a note whose identity
// must not leak: the chain cut is intentional and suppressed.
func DeliberateFlatten(err error) string {
	quarantined := fmt.Errorf("quarantined: %v", err) //lint:allow errwrap note text only; identity must not leak
	return quarantined.Error()
}

// EqualitySuppressed keeps an == comparison where the error is known
// unwrapped by contract.
func EqualitySuppressed(err error) bool {
	//lint:allow errwrap csv.Read documents it returns io.EOF unwrapped
	return err == io.EOF
}
