// Fixture for the maporder analyzer modeled on the summary codec: a
// serializer iterating nominal histograms must not let Go's randomized
// map order reach the encoded bytes.
package codec

import "sort"

// encodeHistogramUnsorted streams histogram keys straight out of map
// iteration: two encodes of the same summary would differ. Flagged.
func encodeHistogramUnsorted(hist map[string]int64) []string {
	var out []string
	for k := range hist {
		out = append(out, k) // want `out accumulates map-iteration results but is never deterministically sorted`
	}
	return out
}

// encodeHistogram is the codec's sanctioned idiom: collect the keys,
// sort, then emit key/count pairs in that order.
func encodeHistogram(hist map[string]int64) []string {
	keys := make([]string, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, 2*len(keys))
	for _, k := range keys {
		out = append(out, k, itoa(hist[k]))
	}
	return out
}

// histogramTotal folds a commutative sum; order cannot leak. Not
// flagged.
func histogramTotal(hist map[string]int64) int64 {
	var n int64
	for _, v := range hist {
		n += v
	}
	return n
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
