// Fixture for the nondeterm analyzer modeled on summary merging: an
// in-scope (internal/) package whose outputs are persisted artifacts,
// so wall-clock, global-rand and environment reads are result-path
// nondeterminism.
package merge

import (
	"math/rand"
	"os"
	"time"
)

// badStamp records a merge timestamp into the artifact: two merges of
// the same shards would produce different bytes. Flagged.
func badStamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in a result path`
}

// badShardID draws a shard identifier from the global generator.
// Flagged.
func badShardID() int {
	return rand.Int() // want `rand\.Int draws from the global unseeded generator`
}

// badTempDir lets the environment pick where shard files land. Flagged.
func badTempDir() string {
	return os.Getenv("ACFSUM_DIR") // want `os\.Getenv in a result path`
}

// mergeTiming measures merge duration with the sanctioned start/Since
// idiom; the reading feeds stats, not artifact bytes. Not flagged.
func mergeTiming() time.Duration {
	start := time.Now()
	fold()
	return time.Since(start)
}

// shardSample subsamples deterministically from an explicit seed. Not
// flagged.
func shardSample(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

func fold() {}
