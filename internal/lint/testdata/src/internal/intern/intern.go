// Fixture for the maporder analyzer: key-interning tables of the kind
// the ingest hot path uses. The table itself is order-safe as long as
// it is only indexed; draining it into output without sorting leaks
// Go's randomized map order.
package intern

import "sort"

// table maps an encoded key to its canonical interned copy.
type table struct {
	keys map[string]string
}

// key is the hot-path lookup: a map index, never a range, so there is
// no iteration order to leak and nothing to flag.
func (t *table) key(buf []byte) string {
	if s, ok := t.keys[string(buf)]; ok {
		return s
	}
	s := string(buf)
	t.keys[s] = s
	return s
}

// dumpNoSort drains the intern table in map order: flagged.
func (t *table) dumpNoSort() []string {
	var out []string
	for k := range t.keys {
		out = append(out, k) // want `out accumulates map-iteration results but is never deterministically sorted`
	}
	return out
}

// dumpSorted is the sanctioned collect-and-sort drain.
func (t *table) dumpSorted() []string {
	var out []string
	for k := range t.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// size aggregates commutatively; no order leaks.
func (t *table) size() int {
	n := 0
	for k := range t.keys {
		n += len(k)
	}
	return n
}
