// Negative fixture for nondeterm: internal/experiments/... is exempted
// by default (experiment harnesses time and label their runs).
package harness

import "time"

func Stamp() string {
	return time.Now().Format(time.RFC3339)
}
