// Fixture for the lockhold analyzer: blocking operations while a
// sync.Mutex / RWMutex is held.
package lockhold

import (
	"os"
	"sync"
)

// catalog is the serving-layer shape: one mutex in front of a map,
// artifacts on disk.
type catalog struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	entries map[string][]byte
}

// loadHeld reads a file with the mutex held for the whole call — every
// concurrent probe convoys behind the disk. Flagged.
func (c *catalog) loadHeld(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.entries[name]; ok {
		return b, nil
	}
	data, err := os.ReadFile(name) // want `os.ReadFile while c.mu is held`
	if err != nil {
		return nil, err
	}
	c.entries[name] = data
	return data, nil
}

// sendHeld performs a channel send under an RLock. Flagged.
func (c *catalog) sendHeld(ch chan string, name string) {
	c.rw.RLock()
	ch <- name // want `channel send while c.rw is held`
	c.rw.RUnlock()
}

// waitHeld blocks on a WaitGroup under the lock. Flagged.
func (c *catalog) waitHeld(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want `\(sync.WaitGroup\).Wait while c.mu is held`
	c.mu.Unlock()
}

// loadStaged is the sanctioned shape: stage the I/O outside the
// critical section, re-validate under the lock.
func (c *catalog) loadStaged(name string) ([]byte, error) {
	c.mu.Lock()
	b, ok := c.entries[name]
	c.mu.Unlock()
	if ok {
		return b, nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.entries[name] = data
	c.mu.Unlock()
	return data, nil
}

// publish holds the lock across os.Rename only: a constant-time
// metadata operation, deliberately exempt (the catalog's atomic
// publish depends on rename-under-lock ordering).
func (c *catalog) publish(tmp, dst string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	c.entries[dst] = data
	return nil
}

// drainNonblocking holds the lock across a select with a default:
// nonblocking, not flagged.
func (c *catalog) drainNonblocking(ch chan string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case name := <-ch:
		delete(c.entries, name)
	default:
	}
}

// boundedSend is provably bounded (buffered channel owned by this
// type, capacity checked by construction) and suppressed.
func (c *catalog) boundedSend(buf chan string, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf <- name //lint:allow lockhold buffered and sized to the holder count by construction
}

// wal is the storage-engine shape: an index mutex beside an append-only
// log file. The discipline is that the log belongs to a single writer
// goroutine and the mutex guards only the in-memory index — appending
// to the WAL while the index lock is held convoys every reader behind
// an fsync.
type wal struct {
	mu    sync.Mutex
	file  *os.File
	index map[string]int64
}

// appendHeld writes and syncs the WAL frame with the index mutex held
// for the whole append — every concurrent lookup stalls behind the
// disk flush. Flagged, twice.
func (w *wal) appendHeld(name string, frame []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.file.Write(frame); err != nil { // want `\(os.File\).Write while w.mu is held`
		return err
	}
	if err := w.file.Sync(); err != nil { // want `\(os.File\).Sync while w.mu is held`
		return err
	}
	w.index[name] = int64(len(frame))
	return nil
}

// appendStaged is the sanctioned shape: the frame hits the disk outside
// the critical section, and the lock is taken only to install the
// in-memory index entry after durability is established.
func (w *wal) appendStaged(name string, frame []byte) error {
	if _, err := w.file.Write(frame); err != nil {
		return err
	}
	if err := w.file.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	w.index[name] = int64(len(frame))
	w.mu.Unlock()
	return nil
}

// appendBootstrap holds the lock across the first header write during
// construction, before any reader can hold a reference; suppressed.
func (w *wal) appendBootstrap(header []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := w.file.Write(header) //lint:allow lockhold one-time constructor write before the store is published to any reader
	return err
}

// arenaPool wraps a free-list channel in a mutex — a belt-and-braces
// instinct that convoys every producer and consumer on the lock while
// the channel op blocks. The channel is already the synchronization.
type arenaPool struct {
	mu   sync.Mutex
	free chan []float64
}

// get blocks on the pool receive with the mutex held: when the pool is
// empty, every other get AND every put deadlocks behind mu. Flagged.
func (p *arenaPool) get() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.free // want `channel receive while p.mu is held`
}

// put mirrors it on the send side. Flagged.
func (p *arenaPool) put(b []float64) {
	p.mu.Lock()
	p.free <- b // want `channel send while p.mu is held`
	p.mu.Unlock()
}

// getDirect is the sanctioned shape: the channel is the lock.
func (p *arenaPool) getDirect() []float64 {
	return <-p.free
}
