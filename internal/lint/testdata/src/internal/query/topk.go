// Fixture for the maporder analyzer: top-k selection over a
// signature → degree map, the shape of the query engine's rule-diff and
// top-k paths. Picking the K strongest entries is only deterministic if
// the drained candidates are totally ordered before truncation; a
// degree-only sort leaves ties in map order, and skipping the sort
// leaks it outright.
package query

import "sort"

type scored struct {
	sig    string
	degree float64
}

// topKNoSort drains the candidate map and truncates without sorting:
// the "top" K are whatever map order produced. Flagged.
func topKNoSort(degrees map[string]float64, k int) []scored {
	var out []scored
	for sig, d := range degrees {
		out = append(out, scored{sig, d}) // want `out accumulates map-iteration results but is never deterministically sorted`
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// topKSorted is the sanctioned shape: collect, impose the total order
// (degree, then signature — degrees tie), then truncate.
func topKSorted(degrees map[string]float64, k int) []scored {
	var out []scored
	for sig, d := range degrees {
		out = append(out, scored{sig, d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].degree != out[j].degree {
			return out[i].degree < out[j].degree
		}
		return out[i].sig < out[j].sig
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// strongest reduces commutatively — a running minimum needs no order —
// so nothing is flagged.
func strongest(degrees map[string]float64) (best string, min float64) {
	min = 2
	for sig, d := range degrees {
		if d < min || (d == min && sig < best) {
			best, min = sig, d
		}
	}
	return best, min
}

// sweepCounts indexes the map per factor instead of ranging over it:
// no iteration order exists to leak.
func sweepCounts(degrees map[string]float64, factors []string) []float64 {
	out := make([]float64, 0, len(factors))
	for _, f := range factors {
		out = append(out, degrees[f])
	}
	return out
}
