// Package clusterjobs sits OUTSIDE the retrybound scope — the path
// does not match `(^|/)internal/cluster(/|$)` (no path boundary after
// "cluster") — so its unbounded sleep loop draws no finding.
package clusterjobs

import "time"

// Spin would be a retrybound violation inside internal/cluster.
func Spin(done func() bool) {
	for {
		if done() {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
