// Fixture for the nondeterm analyzer: an in-scope (internal/) package
// on the mining result path.
package miner

import (
	"math/rand"
	"os"
	"time"
)

// badClock stamps rules with the wall clock: flagged.
func badClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in a result path`
}

// badSeed seeds implicitly from the global generator: flagged.
func badSeed(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the global unseeded generator`
}

// badEnv lets the environment steer mining: flagged.
func badEnv() string {
	return os.Getenv("DAR_MODE") // want `os\.Getenv in a result path`
}

// timing uses the sanctioned start/Since idiom: not flagged.
func timing() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// timingSub measures with explicit Sub calls: not flagged.
func timingSub() time.Duration {
	start := time.Now()
	work()
	end := time.Now()
	return end.Sub(start)
}

// seeded uses an explicit seed: reproducible, not flagged.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

//lint:telemetry — wall-clock readings here feed logs, never rules.
func tagged() int64 {
	return time.Now().Unix()
}

// allowed uses the per-line escape hatch.
func allowed() string {
	return os.Getenv("HOME") //lint:allow nondeterm test-only diagnostics path
}

func work() {}
