// Fixture for the wgbalance analyzer: WaitGroup Add/Done mismatch
// shapes inside spawned goroutines.
package wgbalance

import "sync"

// fanOutBroken shows both bug shapes: Add racing Wait from inside the
// goroutine, and a Done that a panic would skip.
func fanOutBroken(tasks []func()) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		t := t
		go func() {
			wg.Add(1) // want `WaitGroup.Add inside the goroutine it accounts for`
			t()
			wg.Done() // want `WaitGroup.Done not deferred`
		}()
	}
	wg.Wait()
}

// fanOutSanctioned is the worker-pool discipline: Add before the go
// statement, Done deferred first.
func fanOutSanctioned(tasks []func()) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			t()
		}()
	}
	wg.Wait()
}

// deferredClosure routes Done through a deferred closure: still
// executes on panic, not flagged.
func deferredClosure(tasks []func()) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		t := t
		wg.Add(1)
		go func() {
			defer func() {
				wg.Done()
			}()
			t()
		}()
	}
	wg.Wait()
}

// reAddSuppressed re-arms the group from inside a goroutine that is
// itself accounted for before spawning — a deliberate self-requeueing
// worker, suppressed with a reason.
func reAddSuppressed(requeue func() bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for requeue() {
			wg.Add(1) //lint:allow wgbalance requeue happens before the matching Done; Wait cannot pass early
			go func() {
				defer wg.Done()
			}()
		}
	}()
	wg.Wait()
}
