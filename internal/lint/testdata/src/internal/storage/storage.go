// Negative fixture for rawgoroutine: internal/storage is a sanctioned
// package. The segment store's concurrency design is a single writer
// goroutine that owns the WAL plus a background compactor — all
// mutation serialises through those owners, so spawning them is the
// point, not a determinism leak.
package storage

type walReq struct {
	reply chan error
}

type store struct {
	reqs     chan walReq
	compactc chan walReq
	done     chan struct{}
}

// start spawns the writer and compactor goroutines; sanctioned, not
// flagged.
func (s *store) start() {
	go s.runWriter()
	go s.runCompactor()
}

func (s *store) runWriter() {
	for {
		select {
		case req := <-s.reqs:
			req.reply <- nil
		case <-s.done:
			return
		}
	}
}

func (s *store) runCompactor() {
	for {
		select {
		case req := <-s.compactc:
			req.reply <- nil
		case <-s.done:
			return
		}
	}
}
