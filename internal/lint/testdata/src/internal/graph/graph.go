// Negative fixture for rawgoroutine: internal/graph is a sanctioned
// package (its clique fan-out owns its own worker pool), so goroutines
// here are not flagged.
package graph

import "sync"

func CliqueWorkers(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
