// Negative fixture for rawgoroutine: internal/core/parallel.go is the
// sanctioned worker-pool file, matched by file suffix.
package core

import "sync"

func parallelFor(workers, n int, fn func(int)) {
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
