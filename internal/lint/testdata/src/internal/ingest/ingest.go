// Fixture for the rawgoroutine analyzer: a batched ingest pipeline
// written outside internal/core/parallel.go. The shape mirrors the real
// reader/lane pipeline — one goroutine per lane consuming tuple batches
// off a channel — which is exactly the code that must live in the
// sanctioned worker-pool file to be auditable.
package ingest

import "sync"

type batch struct {
	rows []float64
	n    int
}

// pipeline spawns lane workers ad hoc: every `go` is flagged.
func pipeline(lanes int, feed func(chan<- *batch)) {
	chans := make([]chan *batch, lanes)
	var wg sync.WaitGroup
	for l := range chans {
		chans[l] = make(chan *batch, 1)
		wg.Add(1)
		go func(ch <-chan *batch) { // want `raw goroutine outside the sanctioned worker pools`
			defer wg.Done()
			for b := range ch {
				_ = b.rows[:b.n]
			}
		}(chans[l])
	}
	for _, ch := range chans {
		feed(ch)
		close(ch)
	}
	wg.Wait()
}

// recycler spawns a named drain goroutine: flagged all the same.
func recycler(free chan *batch) {
	go drain(free) // want `raw goroutine outside the sanctioned worker pools`
}

func drain(free chan *batch) {
	for range free {
	}
}

// serialIngest projects and inserts on the caller's goroutine: nothing
// to flag.
func serialIngest(rows [][]float64, insert func([]float64)) {
	for _, r := range rows {
		insert(r)
	}
}

// pooledKernel is the load-balanced pipeline shape: recycled batch
// arenas from a free pool, fanned out to lane workers that run a
// batched insert kernel and recycle the arena when done. Exactly the
// code that must live in the sanctioned worker-pool file — here every
// spawn is flagged.
func pooledKernel(lanes, pool int, insert func([]float64, int)) {
	free := make(chan *batch, pool)
	for i := 0; i < pool; i++ {
		free <- &batch{rows: make([]float64, 256)}
	}
	chans := make([]chan *batch, lanes)
	var wg sync.WaitGroup
	for l := range chans {
		chans[l] = make(chan *batch, 1)
		wg.Add(1)
		go func(ch <-chan *batch) { // want `raw goroutine outside the sanctioned worker pools`
			defer wg.Done()
			for b := range ch {
				insert(b.rows, b.n)
				free <- b
			}
		}(chans[l])
	}
	for b := range free {
		for _, ch := range chans {
			ch <- b
		}
	}
}
