// Fixture for the rawgoroutine analyzer: an internal package that is
// not one of the sanctioned worker-pool locations.
package pipeline

import "sync"

// fanOut spawns an ad-hoc goroutine per task: flagged.
func fanOut(tasks []func()) {
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(f func()) { // want `raw goroutine outside the sanctioned worker pools`
			defer wg.Done()
			f()
		}(task)
	}
	wg.Wait()
}

// namedGoroutine spawns a named function: equally unsupervised, flagged.
func namedGoroutine() {
	go background() // want `raw goroutine outside the sanctioned worker pools`
}

// allowed demonstrates the escape hatch for intentional one-offs.
func allowed(stop chan struct{}) {
	//lint:allow rawgoroutine long-lived watcher, joins on stop
	go func() {
		<-stop
	}()
}

func background() {}

// serial has no goroutines: nothing to flag.
func serial(tasks []func()) {
	for _, t := range tasks {
		t()
	}
}
