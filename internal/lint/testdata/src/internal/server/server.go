// Negative fixture for rawgoroutine: internal/server is a sanctioned
// package. A serving layer spawns goroutines with no result-merge
// discipline — a singleflight execution raced against a request
// deadline, a listener loop — and none of them touch mined output, so
// the analyzer leaves them alone here.
package server

import "sync"

// Do is the singleflight shape: the first caller executes fn on its own
// goroutine, later callers block on the shared done channel.
func Do(done chan struct{}, fn func() []byte) <-chan []byte {
	ch := make(chan []byte, 1)
	go func() {
		defer close(done)
		ch <- fn()
	}()
	return ch
}

// Race is the deadline shape: run the flight off the request goroutine
// so the handler can select between the result and a timeout.
func Race(fn func() []byte, deadline <-chan struct{}) []byte {
	ch := make(chan []byte, 1)
	go func() { ch <- fn() }()
	select {
	case b := <-ch:
		return b
	case <-deadline:
		return nil
	}
}

// Serve is the listener-loop shape.
func Serve(accept func() func(), wg *sync.WaitGroup) {
	for {
		conn := accept()
		if conn == nil {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn()
		}()
	}
}
