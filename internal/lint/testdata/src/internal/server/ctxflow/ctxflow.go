// Fixture for the ctxflow analyzer: detached or dropped contexts in a
// serving request path (the fixture path sits under internal/server,
// the analyzer's default scope).
package ctxflow

import (
	"context"
	"time"
)

// request stands in for *http.Request: a Context() accessor returning
// the caller's context.
type request struct{ ctx context.Context }

func (r *request) Context() context.Context { return r.ctx }

// handleDetached splices in a fresh root context: the request's
// timeout and disconnect-abort no longer reach the work. Flagged.
func handleDetached(r *request, run func(context.Context)) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want `context.Background detaches this path from the request`
	defer cancel()
	run(ctx)
}

// handleTODO is the same bug with TODO. Flagged.
func handleTODO(r *request, run func(context.Context)) {
	run(context.TODO()) // want `context.TODO detaches this path from the request`
}

// handleDropped calls Context() as a bare statement: the returned
// context is discarded, so nothing observes cancellation. Flagged.
func handleDropped(r *request, run func()) {
	r.Context() // want `context-returning call evaluated as a statement`
	run()
}

// handleFlowing derives from the request context: the sanctioned shape.
func handleFlowing(r *request, run func(context.Context)) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	run(ctx)
}

// startupDetach is a deliberate detach — a background reload loop that
// must outlive any one request — and is suppressed.
func startupDetach(run func(context.Context)) {
	run(context.Background()) //lint:allow ctxflow catalog reload loop outlives requests by design
}
