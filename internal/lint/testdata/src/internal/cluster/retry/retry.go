// Package retry is the retrybound fixture: sleeps inside unbounded
// loops are flagged; counted loops, range loops, timer-select delays
// and allow-suppressed lines are not.
package retry

import (
	"context"
	"errors"
	"time"
)

var errDown = errors.New("down")

// SpinForever is the canonical violation: an infinite loop whose only
// pacing is a sleep.
func SpinForever(ping func() error) {
	for {
		if ping() == nil {
			return
		}
		time.Sleep(50 * time.Millisecond) // want `time.Sleep inside an unbounded for \{\} loop`
	}
}

// RetryUntilNil has a condition, but the condition proves nothing
// about progress — still unbounded.
func RetryUntilNil(ping func() error) {
	err := errDown
	for err != nil {
		err = ping()
		time.Sleep(time.Millisecond) // want `time.Sleep inside an unbounded for cond \{\} loop`
	}
}

// CappedRetry is the sanctioned counted shape: three clauses bound the
// attempts, so the sleep is finite.
func CappedRetry(ping func() error) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = ping(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// DrainAll ranges over a finite slice; the per-item pause is bounded
// by the collection.
func DrainAll(delays []time.Duration) {
	for _, d := range delays {
		time.Sleep(d)
	}
}

// WaitCancellable is the shape the analyzer pushes toward: the delay
// is a timer selected against ctx.Done, so shutdown interrupts it.
func WaitCancellable(ctx context.Context, ping func() error) error {
	for {
		if ping() == nil {
			return nil
		}
		t := time.NewTimer(50 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// BlessedSpin demonstrates the escape hatch for a loop whose bound
// lives outside the syntax.
func BlessedSpin(done func() bool) {
	for !done() {
		time.Sleep(time.Millisecond) //lint:allow retrybound done() flips within two ticks by construction
	}
}

// SpawnPerItem shows the function-literal boundary: the sleep sits in
// a closure with no loop of its own, so the outer range loop does not
// condemn it.
func SpawnPerItem(items []int, run func(func())) {
	for range items {
		run(func() {
			time.Sleep(time.Millisecond)
		})
	}
}

// ClosureSpin is the inverse: the closure carries its own unbounded
// loop, judged on its own.
func ClosureSpin(run func(func())) {
	run(func() {
		for {
			time.Sleep(time.Millisecond) // want `time.Sleep inside an unbounded for \{\} loop`
		}
	})
}
