// Fixture for the keycoverage analyzer: a query-options struct whose
// canonical key renderer and parser must together cover every exported
// field. The analyzer keys on the QueryOptions/CanonicalKey/
// ParseCanonicalKey names (configurable), so this fixture mirrors the
// real internal/core surface in miniature.
package keycoverage

import (
	"strconv"
	"strings"
)

type QueryOptions struct {
	// Metric is fully covered: read by CanonicalKey, assigned by
	// ParseCanonicalKey. Clean.
	Metric string
	// TopK is rendered but never parsed back.
	TopK int // want `exported QueryOptions field TopK is never assigned by ParseCanonicalKey`
	// Sweep is parsed but never rendered — the PR-6 bug shape: a new
	// query mode ships and two different queries share one cache entry.
	Sweep []float64 // want `exported QueryOptions field Sweep is not read by CanonicalKey`
	// Workers is execution-only parallelism, deliberately outside the
	// key (results are bit-identical at any worker count), so both
	// findings are suppressed.
	Workers int //lint:allow keycoverage execution-only; result-invariant by the differential suite
	// scratch is unexported: not part of the key contract.
	scratch int
}

func (q QueryOptions) CanonicalKey() string {
	var b strings.Builder
	b.WriteString("metric=")
	b.WriteString(q.Metric)
	b.WriteString(" topk=")
	b.WriteString(strconv.Itoa(q.TopK))
	return b.String()
}

func ParseCanonicalKey(key string) (QueryOptions, error) {
	var q QueryOptions
	fields := strings.Fields(key)
	if len(fields) > 0 {
		q.Metric = strings.TrimPrefix(fields[0], "metric=")
	}
	for _, f := range fields[1:] {
		v, err := strconv.ParseFloat(strings.TrimPrefix(f, "sweep="), 64)
		if err != nil {
			return QueryOptions{}, err
		}
		q.Sweep = append(q.Sweep, v)
	}
	return q, nil
}
