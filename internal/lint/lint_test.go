package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapOrderAnalyzer,
		"maporder",               // general idioms
		"internal/summary/codec", // serializer-shaped cases (histogram emission)
		"internal/intern",        // key-interning tables (index-only is clean)
		"internal/query",         // top-k truncation over signature maps
	)
}

func TestNonDeterm(t *testing.T) {
	linttest.Run(t, "testdata", lint.NonDetermAnalyzer,
		"internal/miner",               // true positives + telemetry idioms
		"webui",                        // negative: outside the internal/ scope
		"internal/experiments/harness", // negative: exempted harness package
		"internal/summary/merge",       // merge-shaped cases (artifact stamping)
	)
}

func TestRawGoroutine(t *testing.T) {
	linttest.Run(t, "testdata", lint.RawGoroutineAnalyzer,
		"internal/pipeline", // true positives + escape hatch
		"internal/graph",    // negative: sanctioned package
		"internal/core",     // negative: sanctioned parallel.go file
		"internal/ingest",   // batched-pipeline shapes outside the pool file
		"internal/server",   // negative: sanctioned serving layer (flight/deadline/listener shapes)
		"internal/storage",  // negative: sanctioned storage engine (WAL writer/compactor owners)
	)
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, "testdata", lint.AtomicMixAnalyzer, "atomicmix")
}

func TestKeyCoverage(t *testing.T) {
	linttest.Run(t, "testdata", lint.KeyCoverageAnalyzer, "keycoverage")
}

func TestErrWrap(t *testing.T) {
	linttest.Run(t, "testdata", lint.ErrWrapAnalyzer, "internal/errwrap")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxFlowAnalyzer,
		"internal/server/ctxflow", // positives + deliberate-detach suppression
		"internal/server",         // negative: the serving fixtures carry no detached contexts
	)
}

func TestLockHold(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockHoldAnalyzer, "internal/lockhold")
}

func TestWGBalance(t *testing.T) {
	linttest.Run(t, "testdata", lint.WGBalanceAnalyzer, "internal/wgbalance")
}

func TestRetryBound(t *testing.T) {
	linttest.Run(t, "testdata", lint.RetryBoundAnalyzer,
		"internal/cluster/retry", // positives, counted/range/timer negatives, escape hatch
		"internal/clusterjobs",   // negative: path boundary keeps it out of scope
	)
}
