package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapOrderAnalyzer, "maporder")
}

func TestNonDeterm(t *testing.T) {
	linttest.Run(t, "testdata", lint.NonDetermAnalyzer,
		"internal/miner",               // true positives + telemetry idioms
		"webui",                        // negative: outside the internal/ scope
		"internal/experiments/harness", // negative: exempted harness package
	)
}

func TestRawGoroutine(t *testing.T) {
	linttest.Run(t, "testdata", lint.RawGoroutineAnalyzer,
		"internal/pipeline", // true positives + escape hatch
		"internal/graph",    // negative: sanctioned package
		"internal/core",     // negative: sanctioned parallel.go file
	)
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, "testdata", lint.AtomicMixAnalyzer, "atomicmix")
}
