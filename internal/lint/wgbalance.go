package lint

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// WGBalanceAnalyzer flags the two classic sync.WaitGroup accounting
// bugs inside spawned goroutines:
//
//   - wg.Add called inside the goroutine it accounts for. The spawner
//     can reach wg.Wait before the goroutine is scheduled, so Wait
//     returns while work is still running — the fan-out then reads
//     partial results, which in this codebase means a nondeterministic
//     (or racy) rule set. Add must happen before the `go` statement.
//   - wg.Done not deferred. A panic (or an early return added later)
//     skips the Done and Wait deadlocks the whole pipeline. `defer
//     wg.Done()` as the goroutine's first statement is the sanctioned
//     shape — it is what internal/core/parallel.go and internal/graph
//     do, and what the worker-pool merge discipline assumes.
//
// The check is intraprocedural over each `go func() {...}()` body;
// Done calls routed through helpers are not seen. An intentional
// exception takes `//lint:allow wgbalance <why>`.
var WGBalanceAnalyzer = &analysis.Analyzer{
	Name:     "wgbalance",
	Doc:      "flags WaitGroup Add inside the spawned goroutine and Done not deferred",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWGBalance,
}

var wgBalanceScope string

func init() {
	WGBalanceAnalyzer.Flags.StringVar(&wgBalanceScope, "scope",
		`(^|/)internal/`,
		"regexp of package import paths the analyzer applies to")
}

func runWGBalance(pass *analysis.Pass) (interface{}, error) {
	if !compileScope(wgBalanceScope)(pkgPath(pass)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := newDirectives(pass)

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		gs := n.(*ast.GoStmt)
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok || isTestFile(pass, gs.Pos()) {
			return
		}

		// Calls that execute at defer time (including those inside a
		// deferred closure) satisfy the "Done deferred" requirement.
		deferred := make(map[*ast.CallExpr]bool)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			ds, ok := m.(*ast.DeferStmt)
			if !ok {
				return true
			}
			deferred[ds.Call] = true
			ast.Inspect(ds.Call, func(inner ast.Node) bool {
				if c, ok := inner.(*ast.CallExpr); ok {
					deferred[c] = true
				}
				return true
			})
			return true
		})

		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if _, isGo := m.(*ast.GoStmt); isGo {
				return false // nested goroutines get their own visit
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, recv, method, ok := methodOn(pass, call)
			if !ok || path != "sync" || recv != "WaitGroup" {
				return true
			}
			switch method {
			case "Add":
				report(pass, dirs, "wgbalance", call.Pos(),
					"WaitGroup.Add inside the goroutine it accounts for: Wait can return before this runs; Add before the go statement")
			case "Done":
				if !deferred[call] {
					report(pass, dirs, "wgbalance", call.Pos(),
						"WaitGroup.Done not deferred: a panic or early return skips it and Wait deadlocks; use `defer wg.Done()` first in the goroutine")
				}
			}
			return true
		})
	})
	return nil, nil
}
