package lint_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/lint"
)

// TestSuiteComposition pins the analyzer roster. Adding an analyzer is
// deliberate: it must be registered here, carry fixtures, and get a
// row in lint_budget.json before the suite test accepts it.
func TestSuiteComposition(t *testing.T) {
	want := []string{
		"maporder", "nondeterm", "rawgoroutine", "atomicmix",
		"keycoverage", "errwrap", "ctxflow", "lockhold", "wgbalance",
		"retrybound",
	}
	if got := lint.AnalyzerNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("lint.Analyzers = %v, want %v", got, want)
	}
}

// TestDarlintRepoClean is the repo-wide self-check: it builds the
// darlint vettool and runs it over every package, failing on any
// finding. This is the executable form of the determinism contract —
// if an analyzer learns to catch a new bug shape, existing code must
// either be fixed or carry an explicit //lint:allow annotation before
// this test goes green again.
func TestDarlintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole repo; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}

	tool := filepath.Join(t.TempDir(), "darlint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/darlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building darlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	var out bytes.Buffer
	vet.Stdout = &out
	vet.Stderr = &out
	if err := vet.Run(); err != nil {
		t.Errorf("darlint reported findings (or failed): %v\n%s", err, out.String())
	}

	// The suppression budget must match the tree exactly: a new
	// //lint:allow needs a deliberate lint_budget.json edit in the
	// same change, and removing one must lower the budget with it.
	budget := exec.Command(tool, "-budget", "lint_budget.json", "-exact")
	budget.Dir = root
	if out, err := budget.CombinedOutput(); err != nil {
		t.Errorf("suppression budget check failed: %v\n%s", err, out)
	}
}
