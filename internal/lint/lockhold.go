package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// LockHoldAnalyzer flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends/receives, selects
// without a default, WaitGroup.Wait, time.Sleep, and file or network
// I/O. The serving layer's hot structures — the summary catalog, the
// result cache, the singleflight table — all sit behind one mutex
// each; a disk read held under that mutex turns every concurrent
// version probe and cache lookup into a convoy, and a channel op held
// under it is one step from deadlock. Stage I/O outside the critical
// section and re-validate under the lock instead.
//
// Deliberately exempt:
//   - os.Rename / os.Remove: constant-time metadata operations — the
//     catalog's atomic publish (stage outside, rename under the lock)
//     depends on exactly this pattern;
//   - sync.Cond.Wait, which releases the mutex while blocked;
//   - selects with a default clause and close(ch), which don't block.
//
// The analysis is intraprocedural and statement-ordered: a lock is
// considered held from the Lock() call to the matching Unlock() in the
// same function (to the function's end if the Unlock is deferred).
// Blocking calls reached through helper functions are not seen; keep
// critical sections flat. A provably-bounded op can carry
// `//lint:allow lockhold <why>`.
var LockHoldAnalyzer = &analysis.Analyzer{
	Name:     "lockhold",
	Doc:      "flags channel ops and file/network I/O performed while a sync.Mutex or RWMutex is held",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runLockHold,
}

var lockHoldScope string

func init() {
	LockHoldAnalyzer.Flags.StringVar(&lockHoldScope, "scope",
		`(^|/)internal/`,
		"regexp of package import paths the analyzer applies to")
}

// blockingFuncs are package-level functions considered blocking: data-
// plane file reads/writes, network dials and requests, sleeps.
var blockingFuncs = map[string]map[string]bool{
	"os": {
		"ReadFile": true, "WriteFile": true, "Open": true, "OpenFile": true,
		"Create": true, "CreateTemp": true, "MkdirTemp": true, "ReadDir": true,
	},
	"io":            {"ReadAll": true, "Copy": true, "CopyN": true, "CopyBuffer": true},
	"time":          {"Sleep": true},
	"net":           {"Dial": true, "DialTimeout": true, "Listen": true},
	"net/http":      {"Get": true, "Head": true, "Post": true, "PostForm": true},
	"path/filepath": {"Glob": true, "Walk": true, "WalkDir": true},
}

// blockingMethods are methods considered blocking, keyed by the
// declaring package and receiver type name.
var blockingMethods = map[[2]string]map[string]bool{
	{"sync", "WaitGroup"}: {"Wait": true},
	{"os", "File"}: {
		"Read": true, "ReadAt": true, "ReadFrom": true,
		"Write": true, "WriteAt": true, "WriteString": true, "WriteTo": true,
		"Sync": true, "Truncate": true,
	},
	{"net/http", "Client"}: {"Do": true, "Get": true, "Head": true, "Post": true, "PostForm": true},
	{"net", "Conn"}:        {"Read": true, "Write": true},
	{"os/exec", "Cmd"}:     {"Run": true, "Output": true, "CombinedOutput": true, "Wait": true},
}

func runLockHold(pass *analysis.Pass) (interface{}, error) {
	if !compileScope(lockHoldScope)(pkgPath(pass)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := newDirectives(pass)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil || isTestFile(pass, body.Pos()) {
			return
		}
		scanLockRegions(pass, dirs, body)
	})
	return nil, nil
}

// lockState tracks which mutexes are held at the current point of the
// source-ordered walk. Keys are the printed receiver expressions
// ("c.mu"), values the Lock() position for the report.
type lockState struct {
	pass *analysis.Pass
	dirs *directives
	held map[string]token.Pos
}

// scanLockRegions walks one function body in source order (nested
// function literals excluded — they run under their own discipline)
// and reports blocking operations between a Lock and its Unlock.
func scanLockRegions(pass *analysis.Pass, dirs *directives, body *ast.BlockStmt) {
	s := &lockState{pass: pass, dirs: dirs, held: make(map[string]token.Pos)}
	s.walk(body)
}

func (s *lockState) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function, separate discipline
		case *ast.DeferStmt:
			// `defer mu.Unlock()` keeps the mutex held to the end of
			// the function; nothing inside a defer executes here.
			return false
		case *ast.SendStmt:
			s.flag(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.flag(n.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if tv, ok := s.pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.flag(n.Pos(), "range over a channel")
				}
			}
		case *ast.SelectStmt:
			blocking := true
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false // default clause: nonblocking
				}
			}
			if blocking {
				s.flag(n.Pos(), "blocking select")
			}
			// Case bodies run after the select commits; scan them but
			// not the comm statements (already covered by the select).
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						s.walk(stmt)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if recv, name, ok := s.mutexOp(n); ok {
				switch name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					s.held[recv] = n.Pos()
				case "Unlock", "RUnlock":
					delete(s.held, recv)
				}
				return true
			}
			if what, blocking := s.blockingCall(n); blocking {
				s.flag(n.Pos(), what)
			}
		}
		return true
	})
}

// mutexOp resolves a call to (receiver expression, method name) when it
// is a lock/unlock on a sync.Mutex or sync.RWMutex (embedded included).
func (s *lockState) mutexOp(call *ast.CallExpr) (recv, name string, ok bool) {
	path, recvType, method, ok := methodOn(s.pass, call)
	if !ok || path != "sync" || (recvType != "Mutex" && recvType != "RWMutex") {
		return "", "", false
	}
	sel := call.Fun.(*ast.SelectorExpr) // methodOn established the shape
	return types.ExprString(sel.X), method, true
}

// blockingCall reports whether call is in the blocking tables.
func (s *lockState) blockingCall(call *ast.CallExpr) (string, bool) {
	if path, name, ok := pkgFunc(s.pass, call); ok {
		if blockingFuncs[path][name] {
			return shortPkg(path) + "." + name, true
		}
		return "", false
	}
	if path, recvType, method, ok := methodOn(s.pass, call); ok {
		if blockingMethods[[2]string{path, recvType}][method] {
			return "(" + shortPkg(path) + "." + recvType + ")." + method, true
		}
	}
	return "", false
}

// flag reports op if any mutex is held, naming the (deterministically
// chosen) earliest-locked one.
func (s *lockState) flag(pos token.Pos, op string) {
	if len(s.held) == 0 {
		return
	}
	var recv string
	var lockPos token.Pos
	for r, p := range s.held {
		if recv == "" || p < lockPos || (p == lockPos && r < recv) {
			recv, lockPos = r, p
		}
	}
	lp := s.pass.Fset.Position(lockPos)
	report(s.pass, s.dirs, "lockhold", pos,
		"%s while %s is held (Lock at line %d): blocking under a mutex convoys every other holder; stage the operation outside the critical section", op, recv, lp.Line)
}

// shortPkg renders an import path's last element ("net/http" → "http").
func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
