package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapOrderAnalyzer flags `range` over a map whose iteration order leaks
// into ordered output: elements appended to a slice that is never
// deterministically sorted afterwards, values sent on a channel, or
// text printed during the iteration. Go randomizes map iteration, so
// any of these makes the emitted rule set differ between runs — the
// exact bug class the PR 1 differential tests guard against, caught
// here at compile time instead.
//
// The accepted fix patterns are (a) append-then-sort in the same
// function — `sort.*` / `slices.Sort*` / any call whose name contains
// "sort" taking the slice — or (b) a `//lint:allow maporder` comment
// when the order provably cannot reach output (e.g. commutative
// reductions that happen to build a scratch slice).
var MapOrderAnalyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flags map iteration whose nondeterministic order can leak into mining output",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := newDirectives(pass)

	// appendSite is one `dst = append(dst, ...)` inside a map range.
	type appendSite struct {
		obj  types.Object // the destination slice variable or field
		pos  token.Pos    // position of the append, for reporting
		name string       // printable name of the destination
	}

	seen := make(map[token.Pos]bool) // appends already attributed to a loop
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rs := n.(*ast.RangeStmt)
		if !isMapRange(pass, rs) || isTestFile(pass, rs.Pos()) {
			return true
		}

		var appends []appendSite
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.RangeStmt:
				// Nested map ranges get their own visit; attributing
				// their appends to the outer loop would double-report.
				if isMapRange(pass, m) {
					return false
				}
			case *ast.SendStmt:
				if !seen[m.Pos()] {
					seen[m.Pos()] = true
					report(pass, dirs, "maporder", m.Pos(),
						"channel send inside map iteration: receive order follows Go's randomized map order")
				}
			case *ast.CallExpr:
				if path, name, ok := pkgFunc(pass, m); ok && path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
					if !seen[m.Pos()] {
						seen[m.Pos()] = true
						report(pass, dirs, "maporder", m.Pos(),
							"fmt.%s inside map iteration prints in Go's randomized map order; collect and sort first", name)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || i >= len(m.Lhs) {
						continue
					}
					obj, name := lhsObject(pass, m.Lhs[i])
					if obj == nil || seen[call.Pos()] {
						continue
					}
					// Per-iteration temporaries declared inside the
					// loop cannot leak iteration order across items.
					if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
						continue
					}
					seen[call.Pos()] = true
					appends = append(appends, appendSite{obj: obj, pos: call.Pos(), name: name})
				}
			}
			return true
		})
		if len(appends) == 0 {
			return true
		}

		fn := enclosingFuncBody(stack)
		for _, a := range appends {
			if fn != nil && sortedAfter(pass, fn, a.obj, rs.End()) {
				continue
			}
			report(pass, dirs, "maporder", a.pos,
				"%s accumulates map-iteration results but is never deterministically sorted; sort it after the loop or annotate //lint:allow maporder", a.name)
		}
		return true
	})
	return nil, nil
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// lhsObject resolves the destination of an append: a plain variable or
// a selector field (s.rules = append(s.rules, ...)).
func lhsObject(pass *analysis.Pass, lhs ast.Expr) (types.Object, string) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(lhs), lhs.Name
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(lhs.Sel), exprString(lhs)
	}
	return nil, ""
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "result"
}

// enclosingFuncBody returns the body of the innermost function
// declaration on the stack (falling back to the outermost function
// literal), which bounds the search for a later sort call.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	for _, n := range stack {
		if fl, ok := n.(*ast.FuncLit); ok {
			return fl.Body
		}
	}
	return nil
}

// sortedAfter reports whether fn contains, after pos, a call that
// deterministically orders obj: sort.<Fn>(obj...), slices.Sort*(obj...),
// or any function/method whose name contains "sort" receiving obj.
func sortedAfter(pass *analysis.Pass, fn *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if argResolvesTo(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if path, name, ok := pkgFunc(pass, call); ok {
		if path == "sort" || path == "slices" {
			return strings.Contains(strings.ToLower(name), "sort") ||
				name == "Strings" || name == "Ints" || name == "Float64s" ||
				name == "Stable" || name == "Slice" || name == "SliceStable"
		}
		return strings.Contains(strings.ToLower(name), "sort")
	}
	// Local helpers and methods: sortRules(out), m.sortClusters(cs), ...
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(f.Name), "sort")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(f.Sel.Name), "sort")
	}
	return false
}

// argResolvesTo unwraps &x, parens and single-argument conversions
// (sort.Sort(byDegree(out))) down to an identifier or selector and
// compares its object against obj.
func argResolvesTo(pass *analysis.Pass, arg ast.Expr, obj types.Object) bool {
	for {
		switch a := arg.(type) {
		case *ast.ParenExpr:
			arg = a.X
		case *ast.UnaryExpr:
			if a.Op != token.AND {
				return false
			}
			arg = a.X
		case *ast.CallExpr:
			if len(a.Args) != 1 {
				return false
			}
			arg = a.Args[0]
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(a) == obj
		case *ast.SelectorExpr:
			return pass.TypesInfo.ObjectOf(a.Sel) == obj
		default:
			return false
		}
	}
}
