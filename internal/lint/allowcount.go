package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// AnalyzerNames returns the suite's analyzer names in reporting order.
func AnalyzerNames() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return names
}

// AllowSite is one `//lint:allow` directive found by CountAllows.
type AllowSite struct {
	Analyzer string
	Pos      string // "file:line", file relative to the scanned root
}

// CountAllows walks a source tree and counts `//lint:allow <analyzer>`
// directives per analyzer, using exactly the parsing rules the
// analyzers themselves apply (the comment must begin with the
// directive; mentions inside prose or string literals don't count).
// vendor/, testdata/ and dot-directories are skipped: vendored code is
// not ours and fixtures are deliberately full of suppressions.
//
// The returned sites carry every directive position so budget
// violations can name their suppressions; directives naming an
// analyzer outside the suite are returned too (the budget gate treats
// them as errors — a typo in an allow is a suppression that does
// nothing).
func CountAllows(root string) (counts map[string]int, sites []AllowSite, err error) {
	counts = make(map[string]int)
	for _, name := range AnalyzerNames() {
		counts[name] = 0
	}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "vendor" || name == "testdata" || name == "bin" ||
				(len(name) > 1 && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					counts[name]++
					sites = append(sites, AllowSite{
						Analyzer: name,
						Pos:      fmt.Sprintf("%s:%d", filepath.ToSlash(rel), pos.Line),
					})
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Pos != sites[j].Pos {
			return sites[i].Pos < sites[j].Pos
		}
		return sites[i].Analyzer < sites[j].Analyzer
	})
	return counts, sites, nil
}
