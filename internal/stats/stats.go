// Package stats provides the small numeric helpers the experiment harness
// needs: streaming moments, least-squares linear fits with R² (used to
// verify the Figure 6 linearity claim), percentiles, and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming count/mean/variance (Welford).
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance (0 for fewer than 2 observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min and Max return the observed extremes (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the maximum observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// LinearFit is a least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine fits a least-squares line through the points. It returns an
// error for fewer than two points or a degenerate x range.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate x range")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // constant y fits any line through the mean exactly
	} else {
		fit.R2 = sxy * sxy / (sxx * syy)
	}
	return fit, nil
}

// Percentile returns the p-quantile (0 <= p <= 1) of the values using
// linear interpolation. It panics on an empty input or p outside [0,1].
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 || p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Percentile(%d values, p=%v)", len(values), p))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts values into nbins equal-width bins over [min, max].
// Values outside the range clamp to the end bins.
func Histogram(values []float64, min, max float64, nbins int) []int {
	if nbins < 1 || max <= min {
		panic(fmt.Sprintf("stats: Histogram(min=%v, max=%v, nbins=%d)", min, max, nbins))
	}
	out := make([]int, nbins)
	w := (max - min) / float64(nbins)
	for _, v := range values {
		i := int((v - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		out[i]++
	}
	return out
}

// MaxAbsRelDiff returns max |v−ref|/|ref| over the values — the "varied
// about 5%" style comparisons of Section 7.2. ref must be non-zero.
func MaxAbsRelDiff(values []float64, ref float64) float64 {
	if ref == 0 {
		panic("stats: MaxAbsRelDiff with zero reference")
	}
	worst := 0.0
	for _, v := range values {
		if d := math.Abs(v-ref) / math.Abs(ref); d > worst {
			worst = d
		}
	}
	return worst
}
