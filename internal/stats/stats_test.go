package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRunning(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.N() != 0 {
		t.Errorf("empty Running = %+v", r)
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 || r.Mean() != 5 {
		t.Errorf("N=%d Mean=%v", r.N(), r.Mean())
	}
	if math.Abs(r.Var()-4) > 1e-12 || math.Abs(r.Std()-2) > 1e-12 {
		t.Errorf("Var=%v Std=%v, want 4 and 2", r.Var(), r.Std())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min=%v Max=%v", r.Min(), r.Max())
	}
}

// Welford must agree with the two-pass formula.
func TestRunningMatchesTwoPassProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		var r Running
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			r.Add(vals[i])
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(n)
		var v2 float64
		for _, v := range vals {
			v2 += (v - mean) * (v - mean)
		}
		v2 /= float64(n)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Var()-v2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitLineExact(t *testing.T) {
	fit, err := FitLine([]float64{1, 2, 3, 4}, []float64{3, 5, 7, 9})
	if err != nil {
		t.Fatalf("FitLine: %v", err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs, ys []float64
	for i := 0; i < 100; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 3*x+10+rng.NormFloat64())
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatalf("FitLine: %v", err)
	}
	if math.Abs(fit.Slope-3) > 0.05 {
		t.Errorf("Slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
	fit, err := FitLine([]float64{1, 2}, []float64{5, 5})
	if err != nil || fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("constant y fit = %+v, %v", fit, err)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(vals, 1); got != 4 {
		t.Errorf("p1 = %v", got)
	}
	if got := Percentile(vals, 0.5); got != 2.5 {
		t.Errorf("p50 = %v", got)
	}
	// Input must not be reordered.
	if !reflect.DeepEqual(vals, []float64{4, 1, 3, 2}) {
		t.Error("Percentile mutated input")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty Percentile did not panic")
		}
	}()
	Percentile(nil, 0.5)
}

func TestHistogram(t *testing.T) {
	got := Histogram([]float64{0, 0.5, 1.5, 2.5, 5}, 0, 3, 3)
	if !reflect.DeepEqual(got, []int{2, 1, 2}) {
		t.Errorf("Histogram = %v", got)
	}
	got = Histogram([]float64{-10}, 0, 3, 3)
	if !reflect.DeepEqual(got, []int{1, 0, 0}) {
		t.Errorf("clamped Histogram = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad Histogram args did not panic")
		}
	}()
	Histogram(nil, 1, 1, 3)
}

func TestMaxAbsRelDiff(t *testing.T) {
	if got := MaxAbsRelDiff([]float64{95, 105, 100}, 100); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("MaxAbsRelDiff = %v", got)
	}
	if got := MaxAbsRelDiff(nil, 10); got != 0 {
		t.Errorf("empty MaxAbsRelDiff = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero ref did not panic")
		}
	}()
	MaxAbsRelDiff([]float64{1}, 0)
}
