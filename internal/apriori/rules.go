package apriori

import (
	"fmt"
	"sort"
)

// Rule is a classical association rule X ⇒ Y with the interest measures of
// [AIS93]: Support = |X ∧ Y| / |r| and Confidence = |X ∧ Y| / |X|.
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	// Count is the absolute support count of X ∪ Y.
	Count int
	// Support is the fractional support |X ∧ Y| / |r|.
	Support float64
	// Confidence is |X ∧ Y| / |X|.
	Confidence float64
}

// String renders the rule as "{1 2} => {3} (sup=0.50, conf=0.60)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup=%.2f, conf=%.2f)", []int(r.Antecedent), []int(r.Consequent), r.Support, r.Confidence)
}

// GenerateRules derives all association rules with confidence >=
// minConfidence from a frequent-itemset collection, splitting every
// frequent itemset of size >= 2 into non-empty antecedent/consequent
// parts. totalTxns is |r|, used for the fractional support. The frequent
// collection must be downward-closed (as produced by FrequentItemsets);
// an antecedent absent from it indicates a corrupted input.
func GenerateRules(freq []FrequentItemset, minConfidence float64, totalTxns int) ([]Rule, error) {
	if totalTxns <= 0 {
		return nil, fmt.Errorf("apriori: totalTxns must be positive, got %d", totalTxns)
	}
	counts := make(map[string]int, len(freq))
	for _, f := range freq {
		counts[f.Items.key()] = f.Count
	}
	var rules []Rule
	for _, f := range freq {
		k := len(f.Items)
		if k < 2 {
			continue
		}
		// Enumerate antecedents as proper non-empty subsets via bitmask.
		for mask := 1; mask < (1<<k)-1; mask++ {
			ante := make(Itemset, 0, k)
			cons := make(Itemset, 0, k)
			for i, it := range f.Items {
				if mask&(1<<i) != 0 {
					ante = append(ante, it)
				} else {
					cons = append(cons, it)
				}
			}
			anteCount, ok := counts[ante.key()]
			if !ok {
				return nil, fmt.Errorf("apriori: frequent collection is not downward-closed: missing %v", []int(ante))
			}
			conf := float64(f.Count) / float64(anteCount)
			if conf >= minConfidence {
				rules = append(rules, Rule{
					Antecedent: ante,
					Consequent: cons,
					Count:      f.Count,
					Support:    float64(f.Count) / float64(totalTxns),
					Confidence: conf,
				})
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		if !itemsetsEqual(rules[i].Antecedent, rules[j].Antecedent) {
			return lessItemsets(rules[i].Antecedent, rules[j].Antecedent)
		}
		return lessItemsets(rules[i].Consequent, rules[j].Consequent)
	})
	return rules, nil
}

func itemsetsEqual(a, b Itemset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Mine is the end-to-end convenience: frequent itemsets then rules.
func Mine(txns [][]int, opt Options, minConfidence float64) ([]Rule, error) {
	freq, err := FrequentItemsets(txns, opt)
	if err != nil {
		return nil, err
	}
	return GenerateRules(freq, minConfidence, len(txns))
}
