package apriori

// The hash-tree candidate index of [AS94] §2.1.2: interior nodes hash on
// successive items, leaves hold small candidate lists. Counting a
// transaction walks the tree once per starting position instead of
// testing every candidate against every transaction, which is what makes
// the candidate-counting scans tractable when the candidate set is large.
// FrequentItemsets switches to it automatically past a size threshold;
// the brute-force path remains for small candidate sets (and as the
// differential-testing oracle).

const (
	// hashTreeFanout is the number of hash buckets per interior node.
	// It must be large relative to typical per-level candidate spread:
	// leaves at depth k cannot split further, so with F buckets a
	// candidate set of C k-itemsets leaves ≈ C/F^k candidates per
	// deepest leaf — at F=16 and C=36K 2-itemsets that is ~140 contains
	// checks per leaf visit, which dominated the counting scans.
	hashTreeFanout = 128
	// hashTreeLeafCap is the split threshold for leaves.
	hashTreeLeafCap = 8
	// hashTreeMinCandidates gates use of the tree: below this many
	// candidates the simple scan is faster.
	hashTreeMinCandidates = 32
)

// hashTree indexes equal-length candidate itemsets.
type hashTree struct {
	k    int // candidate length
	root *htNode
}

type htNode struct {
	// children is nil for leaves.
	children []*htNode
	// cands holds candidate indices (into the builder's slice) at leaves.
	cands []int
	depth int
}

// newHashTree builds the index over candidates of length k.
func newHashTree(cands []Itemset, k int) *hashTree {
	t := &hashTree{k: k, root: &htNode{}}
	for i := range cands {
		t.insert(t.root, cands, i)
	}
	return t
}

func htHash(item int) int {
	// Multiplicative hash; items are small dense ints, so spread them.
	return (item * 2654435761) >> 7 & (hashTreeFanout - 1)
}

func (t *hashTree) insert(nd *htNode, cands []Itemset, ci int) {
	for {
		if nd.children == nil {
			nd.cands = append(nd.cands, ci)
			// Split when overfull and there are items left to hash on.
			if len(nd.cands) > hashTreeLeafCap && nd.depth < t.k {
				nd.children = make([]*htNode, hashTreeFanout)
				old := nd.cands
				nd.cands = nil
				for _, o := range old {
					t.insert(nd, cands, o)
				}
			}
			return
		}
		h := htHash(cands[ci][nd.depth])
		if nd.children[h] == nil {
			nd.children[h] = &htNode{depth: nd.depth + 1}
		}
		nd = nd.children[h]
	}
}

// count adds the transaction's matches into counts. txn must be sorted;
// txnID identifies the transaction so that candidates reachable through
// several tree paths (hash collisions at different start positions) are
// counted once — seen[ci] records the last transaction that counted ci.
// chosen is a reusable buffer of length >= k for the path's positions.
func (t *hashTree) count(txn []int, txnID int, cands []Itemset, counts []int, seen []int, chosen []int) {
	if len(txn) < t.k {
		return
	}
	t.visit(t.root, txn, txnID, 0, cands, counts, seen, chosen)
}

// visit descends: at an interior node of depth d, every remaining
// transaction item could be the candidate's d-th item, so recurse into
// each corresponding bucket, recording the chosen position. At a leaf,
// a candidate matches iff its first depth items equal the transaction
// items at the chosen positions (rejecting hash collisions in O(depth))
// and its remaining items appear in the transaction suffix.
func (t *hashTree) visit(nd *htNode, txn []int, txnID, from int, cands []Itemset, counts []int, seen []int, chosen []int) {
	if nd.children == nil {
	leafLoop:
		for _, ci := range nd.cands {
			if seen[ci] == txnID {
				continue
			}
			c := cands[ci]
			for d := 0; d < nd.depth; d++ {
				if c[d] != txn[chosen[d]] {
					continue leafLoop
				}
			}
			if containsFrom(c[nd.depth:], txn, from) {
				seen[ci] = txnID
				counts[ci]++
			}
		}
		return
	}
	// Items needed after this depth: t.k - nd.depth; stop early when the
	// suffix is too short.
	for i := from; i <= len(txn)-(t.k-nd.depth); i++ {
		if child := nd.children[htHash(txn[i])]; child != nil {
			chosen[nd.depth] = i
			t.visit(child, txn, txnID, i+1, cands, counts, seen, chosen)
		}
	}
}

// containsFrom reports whether the sorted items all appear in txn[from:].
func containsFrom(items Itemset, txn []int, from int) bool {
	j := from
	for _, want := range items {
		for j < len(txn) && txn[j] < want {
			j++
		}
		if j == len(txn) || txn[j] != want {
			return false
		}
		j++
	}
	return true
}

// countCandidates tallies candidate occurrences over the transactions,
// choosing between the hash tree and the direct scan.
func countCandidates(txns [][]int, cands []Itemset, k int) []int {
	counts := make([]int, len(cands))
	if len(cands) >= hashTreeMinCandidates {
		tree := newHashTree(cands, k)
		seen := make([]int, len(cands))
		for i := range seen {
			seen[i] = -1
		}
		chosen := make([]int, k)
		for ti, txn := range txns {
			tree.count(txn, ti, cands, counts, seen, chosen)
		}
		return counts
	}
	for _, txn := range txns {
		if len(txn) < k {
			continue
		}
		for i, c := range cands {
			if c.contains(txn) {
				counts[i]++
			}
		}
	}
	return counts
}
