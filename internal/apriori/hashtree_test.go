package apriori

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCandidates builds up to n distinct sorted k-itemsets over a
// universe (fewer when the universe cannot supply n distinct sets).
func randomCandidates(rng *rand.Rand, n, k, universe int) []Itemset {
	seen := map[string]bool{}
	var out []Itemset
	for attempts := 0; len(out) < n && attempts < 50*n; attempts++ {
		m := map[int]bool{}
		for len(m) < k {
			m[rng.Intn(universe)] = true
		}
		c := make(Itemset, 0, k)
		for it := range m {
			c = append(c, it)
		}
		c = Itemset(NormalizeTransaction([]int(c)))
		if seen[c.key()] {
			continue
		}
		seen[c.key()] = true
		out = append(out, c)
	}
	return out
}

// The hash tree must agree exactly with the direct scan, including with
// candidate sets large enough to force deep splits and collisions.
func TestHashTreeMatchesDirectCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(3) + 2
		universe := rng.Intn(30) + 2*k + 8
		cands := randomCandidates(rng, rng.Intn(150)+40, k, universe)
		txns := make([][]int, rng.Intn(100)+1)
		for i := range txns {
			var txn []int
			for it := 0; it < universe; it++ {
				if rng.Float64() < 0.35 {
					txn = append(txn, it)
				}
			}
			txns[i] = txn
		}

		// Direct oracle.
		want := make([]int, len(cands))
		for _, txn := range txns {
			for i, c := range cands {
				if c.contains(txn) {
					want[i]++
				}
			}
		}
		// Tree under test.
		tree := newHashTree(cands, k)
		got := make([]int, len(cands))
		seen := make([]int, len(cands))
		for i := range seen {
			seen[i] = -1
		}
		chosen := make([]int, k)
		for ti, txn := range txns {
			tree.count(txn, ti, cands, got, seen, chosen)
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHashTreeShortTransactions(t *testing.T) {
	cands := randomCandidates(rand.New(rand.NewSource(1)), 40, 3, 20)
	tree := newHashTree(cands, 3)
	counts := make([]int, len(cands))
	seen := make([]int, len(cands))
	for i := range seen {
		seen[i] = -1
	}
	tree.count([]int{1, 2}, 0, cands, counts, seen, make([]int, 3)) // shorter than k
	for i, c := range counts {
		if c != 0 {
			t.Fatalf("candidate %d counted on short transaction", i)
		}
	}
}

// countCandidates must behave identically on both sides of the size gate.
func TestCountCandidatesGateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := 2
	big := randomCandidates(rng, hashTreeMinCandidates+10, k, 25)
	small := big[:hashTreeMinCandidates-5]
	txns := make([][]int, 200)
	for i := range txns {
		var txn []int
		for it := 0; it < 25; it++ {
			if rng.Float64() < 0.4 {
				txn = append(txn, it)
			}
		}
		txns[i] = txn
	}
	for _, cands := range [][]Itemset{big, small} {
		got := countCandidates(txns, cands, k)
		want := make([]int, len(cands))
		for _, txn := range txns {
			for i, c := range cands {
				if c.contains(txn) {
					want[i]++
				}
			}
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("count[%d] = %d, want %d (|C|=%d)", i, got[i], want[i], len(cands))
			}
		}
	}
}
