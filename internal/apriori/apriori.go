// Package apriori implements the classical frequent-itemset and
// association-rule machinery of Agrawal & Srikant [AS94] that the paper
// uses as Phase II of its generalized quantitative association rules
// (Section 4.3.2) and as the baseline definition its distance-based rules
// are compared against: level-wise candidate generation with the join and
// prune steps, support counting over transactions, and confidence-based
// rule generation.
package apriori

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Itemset is a set of item identifiers, kept sorted and duplicate-free.
type Itemset []int

// key encodes an itemset for map lookup.
func (s Itemset) key() string {
	buf := make([]byte, 0, len(s)*3)
	for _, it := range s {
		buf = binary.AppendUvarint(buf, uint64(it))
	}
	return string(buf)
}

// contains reports whether the sorted transaction txn contains every item
// of the sorted itemset s (merge walk).
func (s Itemset) contains(txn []int) bool {
	j := 0
	for _, want := range s {
		for j < len(txn) && txn[j] < want {
			j++
		}
		if j == len(txn) || txn[j] != want {
			return false
		}
		j++
	}
	return true
}

// FrequentItemset is an itemset together with its support count.
type FrequentItemset struct {
	Items Itemset
	Count int
}

// Options controls mining.
type Options struct {
	// MinSupport is the absolute minimum support count s0. Itemsets
	// occurring in fewer transactions are pruned. Must be >= 1.
	MinSupport int
	// MaxLen bounds the size of itemsets considered; 0 means unlimited.
	MaxLen int
}

// FrequentItemsets runs the level-wise Apriori algorithm over the
// transactions. Each transaction must be sorted ascending without
// duplicates (normalize with NormalizeTransaction if unsure). The result
// contains all itemsets with support >= MinSupport, smallest first, in
// deterministic order.
func FrequentItemsets(txns [][]int, opt Options) ([]FrequentItemset, error) {
	if opt.MinSupport < 1 {
		return nil, fmt.Errorf("apriori: MinSupport must be >= 1, got %d", opt.MinSupport)
	}
	// Scan 1: count 1-itemsets.
	counts := make(map[int]int)
	for _, txn := range txns {
		for _, it := range txn {
			counts[it]++
		}
	}
	var level []FrequentItemset
	for it, c := range counts {
		if c >= opt.MinSupport {
			level = append(level, FrequentItemset{Items: Itemset{it}, Count: c})
		}
	}
	sortLevel(level)
	all := append([]FrequentItemset(nil), level...)

	for k := 2; len(level) > 0 && (opt.MaxLen == 0 || k <= opt.MaxLen); k++ {
		var cands []Itemset
		var cnt []int
		if k == 2 && len(level) <= maxPairMatrixItems {
			// Every pair of frequent items is a 2-candidate (both
			// subsets are frequent by construction), so count them in a
			// triangular array instead of the hash tree — the special
			// case [AS94] singles out for the second pass.
			cands, cnt = countPairs(txns, level)
		} else {
			cands = generateCandidates(level)
			if len(cands) == 0 {
				break
			}
			// Scan k: count candidate occurrences (hash tree of [AS94]
			// for large candidate sets, direct scan otherwise).
			cnt = countCandidates(txns, cands, k)
		}
		if len(cands) == 0 {
			break
		}
		// Prune k.
		level = level[:0]
		for i, c := range cands {
			if cnt[i] >= opt.MinSupport {
				level = append(level, FrequentItemset{Items: c, Count: cnt[i]})
			}
		}
		sortLevel(level)
		all = append(all, level...)
	}
	return all, nil
}

// maxPairMatrixItems bounds the triangular pair-count array (8192 items
// → ≈33.5M counters ≈ 268MB worst case is too much; 4096 → ≈67MB).
const maxPairMatrixItems = 4096

// countPairs counts every pair of frequent 1-items over the transactions
// using a triangular array, returning the pair itemsets and their counts
// in the same positional correspondence countCandidates uses.
func countPairs(txns [][]int, level []FrequentItemset) ([]Itemset, []int) {
	m := len(level)
	idx := make(map[int]int, m)
	items := make([]int, m)
	for i, f := range level {
		idx[f.Items[0]] = i
		items[i] = f.Items[0]
	}
	// tri(i, j) with i < j flattens to i*m - i(i+1)/2 + (j - i - 1).
	counts := make([]int, m*(m-1)/2)
	mapped := make([]int, 0, 64)
	for _, txn := range txns {
		mapped = mapped[:0]
		for _, it := range txn {
			if i, ok := idx[it]; ok {
				mapped = append(mapped, i)
			}
		}
		// Transaction items are sorted and the level is sorted, so the
		// mapped indices are strictly increasing.
		for x := 0; x < len(mapped); x++ {
			i := mapped[x]
			base := i*m - i*(i+1)/2 - i - 1
			for y := x + 1; y < len(mapped); y++ {
				counts[base+mapped[y]]++
			}
		}
	}
	cands := make([]Itemset, 0, len(counts))
	cnt := make([]int, 0, len(counts))
	for i := 0; i < m; i++ {
		base := i*m - i*(i+1)/2 - i - 1
		for j := i + 1; j < m; j++ {
			if c := counts[base+j]; c > 0 {
				cands = append(cands, Itemset{items[i], items[j]})
				cnt = append(cnt, c)
			}
		}
	}
	return cands, cnt
}

// generateCandidates performs the AS94 join and prune steps: join pairs of
// frequent (k−1)-itemsets sharing their first k−2 items, then discard any
// candidate with an infrequent (k−1)-subset.
func generateCandidates(level []FrequentItemset) []Itemset {
	freq := make(map[string]bool, len(level))
	for _, f := range level {
		freq[f.Items.key()] = true
	}
	var out []Itemset
	for i := 0; i < len(level); i++ {
		a := level[i].Items
		for j := i + 1; j < len(level); j++ {
			b := level[j].Items
			if !samePrefix(a, b) {
				// Levels are sorted, so once prefixes diverge no later j
				// can match.
				break
			}
			cand := make(Itemset, len(a)+1)
			copy(cand, a)
			last := b[len(b)-1]
			cand[len(a)] = last
			if a[len(a)-1] > last {
				cand[len(a)-1], cand[len(a)] = last, a[len(a)-1]
			}
			if hasAllSubsetsFrequent(cand, freq) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasAllSubsetsFrequent checks the prune condition: every (k−1)-subset of
// cand must be frequent.
func hasAllSubsetsFrequent(cand Itemset, freq map[string]bool) bool {
	sub := make(Itemset, len(cand)-1)
	for drop := range cand {
		copy(sub, cand[:drop])
		copy(sub[drop:], cand[drop+1:])
		if !freq[sub.key()] {
			return false
		}
	}
	return true
}

func sortLevel(level []FrequentItemset) {
	sort.Slice(level, func(i, j int) bool {
		return lessItemsets(level[i].Items, level[j].Items)
	})
}

func lessItemsets(a, b Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// NormalizeTransaction sorts and deduplicates a transaction in place,
// returning the normalized slice.
func NormalizeTransaction(txn []int) []int {
	sort.Ints(txn)
	out := txn[:0]
	for i, v := range txn {
		if i == 0 || v != txn[i-1] {
			out = append(out, v)
		}
	}
	return out
}
