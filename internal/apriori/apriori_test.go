package apriori

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// The AS94 worked dataset.
func as94Txns() [][]int {
	return [][]int{
		{1, 3, 4},
		{2, 3, 5},
		{1, 2, 3, 5},
		{2, 5},
	}
}

func findCount(freq []FrequentItemset, items ...int) (int, bool) {
	for _, f := range freq {
		if reflect.DeepEqual([]int(f.Items), items) {
			return f.Count, true
		}
	}
	return 0, false
}

func TestFrequentItemsetsAS94(t *testing.T) {
	freq, err := FrequentItemsets(as94Txns(), Options{MinSupport: 2})
	if err != nil {
		t.Fatalf("FrequentItemsets: %v", err)
	}
	want := map[string]int{
		"1": 2, "2": 3, "3": 3, "5": 3,
		"1 3": 2, "2 3": 2, "2 5": 3, "3 5": 2,
		"2 3 5": 2,
	}
	if len(freq) != len(want) {
		t.Errorf("got %d itemsets, want %d: %v", len(freq), len(want), freq)
	}
	check := func(count int, items ...int) {
		got, ok := findCount(freq, items...)
		if !ok || got != count {
			t.Errorf("itemset %v count = %d,%v; want %d", items, got, ok, count)
		}
	}
	check(2, 1)
	check(3, 2)
	check(3, 3)
	check(3, 5)
	check(2, 1, 3)
	check(2, 2, 3)
	check(3, 2, 5)
	check(2, 3, 5)
	check(2, 2, 3, 5)
	if _, ok := findCount(freq, 4); ok {
		t.Error("item 4 (support 1) should be pruned")
	}
	if _, ok := findCount(freq, 1, 2); ok {
		t.Error("itemset {1,2} (support 1) should be pruned")
	}
}

func TestFrequentItemsetsMaxLen(t *testing.T) {
	freq, err := FrequentItemsets(as94Txns(), Options{MinSupport: 2, MaxLen: 1})
	if err != nil {
		t.Fatalf("FrequentItemsets: %v", err)
	}
	for _, f := range freq {
		if len(f.Items) > 1 {
			t.Errorf("MaxLen=1 produced %v", f.Items)
		}
	}
}

func TestFrequentItemsetsBadSupport(t *testing.T) {
	if _, err := FrequentItemsets(nil, Options{MinSupport: 0}); err == nil {
		t.Error("MinSupport 0 accepted")
	}
}

func TestFrequentItemsetsEmpty(t *testing.T) {
	freq, err := FrequentItemsets(nil, Options{MinSupport: 1})
	if err != nil || len(freq) != 0 {
		t.Errorf("empty mine = %v, %v", freq, err)
	}
}

func TestNormalizeTransaction(t *testing.T) {
	got := NormalizeTransaction([]int{3, 1, 3, 2, 1})
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("NormalizeTransaction = %v", got)
	}
}

// bruteForceFrequent enumerates all itemsets over the item universe and
// counts them directly — the oracle for the property test.
func bruteForceFrequent(txns [][]int, minSup int) map[string]int {
	universe := map[int]bool{}
	for _, txn := range txns {
		for _, it := range txn {
			universe[it] = true
		}
	}
	items := make([]int, 0, len(universe))
	for it := range universe {
		items = append(items, it)
	}
	sort.Ints(items)
	out := map[string]int{}
	for mask := 1; mask < 1<<len(items); mask++ {
		var set Itemset
		for i, it := range items {
			if mask&(1<<i) != 0 {
				set = append(set, it)
			}
		}
		count := 0
		for _, txn := range txns {
			if set.contains(txn) {
				count++
			}
		}
		if count >= minSup {
			out[set.key()] = count
		}
	}
	return out
}

func TestFrequentItemsetsMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nItems := rng.Intn(6) + 2
		nTxns := rng.Intn(20) + 1
		txns := make([][]int, nTxns)
		for i := range txns {
			var txn []int
			for it := 0; it < nItems; it++ {
				if rng.Float64() < 0.4 {
					txn = append(txn, it)
				}
			}
			txns[i] = txn
		}
		minSup := rng.Intn(3) + 1
		freq, err := FrequentItemsets(txns, Options{MinSupport: minSup})
		if err != nil {
			return false
		}
		want := bruteForceFrequent(txns, minSup)
		if len(freq) != len(want) {
			return false
		}
		for _, f := range freq {
			if want[f.Items.key()] != f.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRules(t *testing.T) {
	freq, err := FrequentItemsets(as94Txns(), Options{MinSupport: 2})
	if err != nil {
		t.Fatalf("FrequentItemsets: %v", err)
	}
	rules, err := GenerateRules(freq, 0.9, 4)
	if err != nil {
		t.Fatalf("GenerateRules: %v", err)
	}
	// Confidence-1 rules from {2,3,5} and pairs: 3∧5⇒2 (2/2), 2∧3⇒5 (2/2),
	// 2⇒5 (3/3), 5⇒2 (3/3), 1⇒3 (2/2), 3∧... check a known one.
	found := false
	for _, r := range rules {
		if r.Confidence < 0.9 {
			t.Errorf("rule %v below min confidence", r)
		}
		if reflect.DeepEqual([]int(r.Antecedent), []int{2}) && reflect.DeepEqual([]int(r.Consequent), []int{5}) {
			found = true
			if r.Confidence != 1 || r.Support != 0.75 || r.Count != 3 {
				t.Errorf("2⇒5 = %+v", r)
			}
		}
	}
	if !found {
		t.Errorf("rule 2⇒5 missing from %v", rules)
	}
}

func TestGenerateRulesSorted(t *testing.T) {
	rules, err := Mine(as94Txns(), Options{MinSupport: 2}, 0.5)
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Errorf("rules not sorted by confidence at %d", i)
		}
	}
}

func TestGenerateRulesErrors(t *testing.T) {
	if _, err := GenerateRules(nil, 0.5, 0); err == nil {
		t.Error("totalTxns 0 accepted")
	}
	// A non-downward-closed collection must be rejected.
	bad := []FrequentItemset{{Items: Itemset{1, 2}, Count: 2}}
	if _, err := GenerateRules(bad, 0, 4); err == nil {
		t.Error("non-downward-closed collection accepted")
	}
}

// Confidence and support of every generated rule must match direct
// recounting over the transactions.
func TestRuleMeasuresMatchDirectCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		txns := make([][]int, rng.Intn(15)+2)
		for i := range txns {
			var txn []int
			for it := 0; it < 5; it++ {
				if rng.Float64() < 0.5 {
					txn = append(txn, it)
				}
			}
			txns[i] = txn
		}
		rules, err := Mine(txns, Options{MinSupport: 1}, 0.3)
		if err != nil {
			return false
		}
		for _, r := range rules {
			all := NormalizeTransaction(append(append([]int{}, r.Antecedent...), r.Consequent...))
			both, ante := 0, 0
			for _, txn := range txns {
				if Itemset(all).contains(txn) {
					both++
				}
				if r.Antecedent.contains(txn) {
					ante++
				}
			}
			if r.Count != both {
				return false
			}
			if r.Support != float64(both)/float64(len(txns)) {
				return false
			}
			if r.Confidence != float64(both)/float64(ante) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Antecedent: Itemset{1}, Consequent: Itemset{2}, Support: 0.5, Confidence: 0.6}
	if got := r.String(); got != "[1] => [2] (sup=0.50, conf=0.60)" {
		t.Errorf("String = %q", got)
	}
}
