package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// fakeServer records the last request and plays back a canned answer.
type fakeServer struct {
	method, path, query, contentType string
	body                             []byte
	status                           int
	respType                         string
	resp                             string
	header                           map[string]string
}

func (f *fakeServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.method, f.path, f.query = r.Method, r.URL.Path, r.URL.RawQuery
		f.contentType = r.Header.Get("Content-Type")
		buf := make([]byte, 1<<20)
		n, _ := r.Body.Read(buf)
		f.body = buf[:n]
		for k, v := range f.header {
			w.Header().Set(k, v)
		}
		if f.respType != "" {
			w.Header().Set("Content-Type", f.respType)
		}
		w.WriteHeader(f.status)
		w.Write([]byte(f.resp)) //nolint:errcheck
	})
}

func newFake(t *testing.T, f *fakeServer) *Client {
	t.Helper()
	ts := httptest.NewServer(f.handler())
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewRejectsBadURLs(t *testing.T) {
	for _, addr := range []string{"", "not a url", "host:8344", "/just/a/path"} {
		if _, err := New(addr); err == nil {
			t.Errorf("New(%q) succeeded", addr)
		}
	}
}

func TestIngestBuildsRequest(t *testing.T) {
	f := &fakeServer{status: 200, resp: `{"name":"s","version":3,"tuples":10,"groups":2,"clusters":4,"bytes":99}`}
	c := newFake(t, f)
	res, err := c.Ingest(context.Background(), "s", []byte("A\n1\n"), IngestOptions{D0: 2.5, Memory: 1024, Workers: 3, Groups: "a+b"})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if f.method != "POST" || f.path != "/v1/ingest" {
		t.Errorf("request = %s %s", f.method, f.path)
	}
	if f.query != "d0=2.5&groups=a%2Bb&memory=1024&name=s&workers=3" {
		t.Errorf("query = %q", f.query)
	}
	if string(f.body) != "A\n1\n" || f.contentType != "text/csv" {
		t.Errorf("body %q content-type %q", f.body, f.contentType)
	}
	if res.Version != 3 || res.Tuples != 10 || res.Bytes != 99 {
		t.Errorf("result = %+v", res)
	}
}

func TestShardIngestReturnsRawArtifact(t *testing.T) {
	f := &fakeServer{status: 200, respType: "application/octet-stream", resp: "ACFS\x01raw-bytes"}
	c := newFake(t, f)
	got, err := c.ShardIngest(context.Background(), []byte("A\n1\n"), IngestOptions{D0s: []float64{2, 0.5}})
	if err != nil {
		t.Fatalf("ShardIngest: %v", err)
	}
	if f.path != "/v1/ingest/shard" || f.query != "d0s=2%2C0.5" {
		t.Errorf("request = %s?%s", f.path, f.query)
	}
	if string(got) != "ACFS\x01raw-bytes" {
		t.Errorf("artifact = %q", got)
	}
}

func TestQueryJSONMeta(t *testing.T) {
	f := &fakeServer{status: 200, resp: `{"tuples":5}`,
		header: map[string]string{"X-Dard-Summary-Version": "7", "X-Dard-Cache": "hit"}}
	c := newFake(t, f)
	payload, meta, err := c.QueryJSON(context.Background(), "s", []byte(`{}`))
	if err != nil {
		t.Fatalf("QueryJSON: %v", err)
	}
	if f.path != "/v1/summaries/s/query" || f.contentType != "application/json" {
		t.Errorf("request = %s content-type %q", f.path, f.contentType)
	}
	if string(payload) != `{"tuples":5}` || meta.Version != "7" || meta.Cache != "hit" {
		t.Errorf("payload %q meta %+v", payload, meta)
	}
}

func TestAPIErrorFromJSONBody(t *testing.T) {
	f := &fakeServer{status: 404, resp: `{"error":"unknown summary \"s\""}`}
	c := newFake(t, f)
	_, _, err := c.QueryJSON(context.Background(), "s", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != 404 || apiErr.Message != `unknown summary "s"` {
		t.Errorf("APIError = %+v", apiErr)
	}
}

func TestAPIErrorFromRawBody(t *testing.T) {
	f := &fakeServer{status: 500, resp: "boom\n"}
	c := newFake(t, f)
	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Message != "boom" {
		t.Fatalf("err = %v, want *APIError with raw message", err)
	}
}

func TestPutMergeListMetrics(t *testing.T) {
	f := &fakeServer{status: 200, resp: `{"name":"s","version":2,"tuples":4,"shards":2}`}
	c := newFake(t, f)
	if _, err := c.PutSummary(context.Background(), "s", []byte("art")); err != nil {
		t.Fatalf("PutSummary: %v", err)
	}
	if f.method != "PUT" || f.path != "/v1/summaries/s" || f.contentType != "application/octet-stream" {
		t.Errorf("put request = %s %s %s", f.method, f.path, f.contentType)
	}
	mr, err := c.MergeShard(context.Background(), "s", []byte("art"))
	if err != nil || mr.Shards != 2 {
		t.Fatalf("MergeShard: %v %+v", err, mr)
	}
	if f.path != "/v1/summaries/s/merge" {
		t.Errorf("merge path = %s", f.path)
	}

	f.resp = `[{"name":"a","version":1},{"name":"b","version":4}]`
	rows, err := c.List(context.Background())
	if err != nil || len(rows) != 2 || rows[1].Version != 4 {
		t.Fatalf("List: %v %+v", err, rows)
	}

	f.resp = `{"errors_total":1,"query_requests_total":9}`
	m, err := c.Metrics(context.Background())
	if err != nil || m["query_requests_total"] != 9 {
		t.Fatalf("Metrics: %v %+v", err, m)
	}
}

func TestClusterIngestRoute(t *testing.T) {
	f := &fakeServer{status: 200, resp: `{"name":"s","version":1,"tuples":8}`}
	c := newFake(t, f)
	res, err := c.ClusterIngest(context.Background(), "s", []byte("A\n1\n"), IngestOptions{})
	if err != nil {
		t.Fatalf("ClusterIngest: %v", err)
	}
	if f.path != "/v1/cluster/ingest" || f.query != "name=s" || res.Tuples != 8 {
		t.Errorf("request = %s?%s result %+v", f.path, f.query, res)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := newFake(t, &fakeServer{status: 200, resp: "{}"})
	if err := c.Health(ctx); err == nil {
		t.Error("Health with a cancelled context succeeded")
	}
}
