// Package client is the typed Go client for the dard daemon and the
// darc cluster coordinator, grown out of the `darminer query -addr`
// remote-mode code. It speaks the versioned HTTP API (see
// internal/server and internal/cluster) and turns every non-2xx answer
// into an *APIError carrying the server's JSON error message, so
// callers branch on status codes instead of scraping text.
//
// The client adds no semantics of its own: bodies go over the wire
// verbatim, and a query response is exactly the byte stream the server
// rendered (which is itself bit-identical to `darminer query -json`).
// That property is what lets the cluster coordinator fold worker
// responses under the determinism contract.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Client talks to one dard (or darc) base URL. The zero value is not
// usable; construct with New.
type Client struct {
	base *url.URL
	http *http.Client
}

// New validates the base URL ("http://host:8344") and returns a client
// over http.DefaultClient. Per-request deadlines come from the caller's
// context, not a client-wide timeout, because shard ingests and quick
// health probes share one client.
func New(addr string) (*Client, error) {
	base, err := url.Parse(addr)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("client: %q is not a base URL like http://host:8344", addr)
	}
	return &Client{base: base, http: http.DefaultClient}, nil
}

// NewWithHTTP is New over a caller-supplied http.Client (custom
// transports, test doubles).
func NewWithHTTP(addr string, hc *http.Client) (*Client, error) {
	c, err := New(addr)
	if err != nil {
		return nil, err
	}
	if hc != nil {
		c.http = hc
	}
	return c, nil
}

// Base returns the server's base URL.
func (c *Client) Base() string { return c.base.String() }

// APIError is a non-2xx answer: the HTTP status plus the server's
// message (the "error" field of its JSON body when present, the raw
// body otherwise).
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (status %d)", e.Message, e.Status)
}

// IngestOptions carries the ingest-time parameters of POST /v1/ingest
// and /v1/ingest/shard, mirroring the `darminer ingest` flags. Zero
// values are server defaults. D0s, when non-nil, pins explicit
// per-group thresholds — the cluster coordinator derives them once
// over the whole relation and ships the same vector to every shard so
// the shard summaries stay mergeable.
type IngestOptions struct {
	D0      float64
	D0s     []float64
	Memory  int
	Workers int
	Groups  string
	// Shards overrides the coordinator's shard count on
	// POST /v1/cluster/ingest. Plain dard endpoints ignore it. Pinning
	// it is what makes cluster ingests byte-identical across differently
	// sized worker pools (the merged artifact records the shard count).
	Shards int
}

// query renders the options into URL query parameters.
func (o IngestOptions) query() url.Values {
	v := url.Values{}
	if o.D0 != 0 {
		v.Set("d0", strconv.FormatFloat(o.D0, 'g', -1, 64))
	}
	if o.D0s != nil {
		parts := make([]string, len(o.D0s))
		for i, d := range o.D0s {
			parts[i] = strconv.FormatFloat(d, 'g', -1, 64)
		}
		v.Set("d0s", strings.Join(parts, ","))
	}
	if o.Memory != 0 {
		v.Set("memory", strconv.Itoa(o.Memory))
	}
	if o.Workers != 0 {
		v.Set("workers", strconv.Itoa(o.Workers))
	}
	if o.Groups != "" {
		v.Set("groups", o.Groups)
	}
	if o.Shards != 0 {
		v.Set("shards", strconv.Itoa(o.Shards))
	}
	return v
}

// IngestResult acknowledges an ingest or artifact install.
type IngestResult struct {
	Name     string `json:"name"`
	Version  uint64 `json:"version"`
	Tuples   int64  `json:"tuples"`
	Groups   int    `json:"groups"`
	Clusters int    `json:"clusters"`
	Bytes    int    `json:"bytes"`
}

// MergeResult acknowledges a shard merge.
type MergeResult struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Tuples  int64  `json:"tuples"`
	Shards  int    `json:"shards"`
}

// SummaryInfo is one row of the catalog listing.
type SummaryInfo struct {
	Name     string `json:"name"`
	Version  uint64 `json:"version"`
	Bytes    int64  `json:"bytes"`
	Loaded   bool   `json:"loaded"`
	Tuples   int64  `json:"tuples"`
	Shards   int    `json:"shards"`
	Groups   int    `json:"groups"`
	Clusters int    `json:"clusters"`
}

// QueryMeta carries the response headers of a served query.
type QueryMeta struct {
	Version string // X-Dard-Summary-Version
	Cache   string // X-Dard-Cache: hit, miss or shared
}

// do runs one request and maps non-2xx answers to *APIError.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, contentType string, body []byte) ([]byte, http.Header, error) {
	u := c.base.JoinPath(path)
	if query != nil {
		u.RawQuery = query.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), rd)
	if err != nil {
		return nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(payload))
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, nil, &APIError{Status: resp.StatusCode, Message: msg}
	}
	return payload, resp.Header, nil
}

// doJSON runs a request and decodes a JSON response into out.
func (c *Client) doJSON(ctx context.Context, method, path string, query url.Values, contentType string, body []byte, out any) error {
	payload, _, err := c.do(ctx, method, path, query, contentType, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("client: parsing %s %s response: %w", method, path, err)
	}
	return nil
}

// Health probes GET /healthz. A nil error means the server answered 2xx.
func (c *Client) Health(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/healthz", nil, "", nil)
	return err
}

// Ingest POSTs a CSV relation into the catalog under name.
func (c *Client) Ingest(ctx context.Context, name string, csv []byte, opt IngestOptions) (IngestResult, error) {
	q := opt.query()
	q.Set("name", name)
	var res IngestResult
	err := c.doJSON(ctx, http.MethodPost, "/v1/ingest", q, "text/csv", csv, &res)
	return res, err
}

// ShardIngest POSTs a CSV shard through the stateless worker endpoint
// and returns the encoded .acfsum artifact — nothing is installed on
// the worker, which is what makes a requeued shard idempotent.
func (c *Client) ShardIngest(ctx context.Context, csv []byte, opt IngestOptions) ([]byte, error) {
	payload, _, err := c.do(ctx, http.MethodPost, "/v1/ingest/shard", opt.query(), "text/csv", csv)
	return payload, err
}

// PutSummary installs an encoded .acfsum artifact under name,
// replacing any current version (replication push).
func (c *Client) PutSummary(ctx context.Context, name string, artifact []byte) (IngestResult, error) {
	var res IngestResult
	err := c.doJSON(ctx, http.MethodPut, "/v1/summaries/"+url.PathEscape(name), nil, "application/octet-stream", artifact, &res)
	return res, err
}

// MergeShard folds an encoded shard artifact into the named summary.
func (c *Client) MergeShard(ctx context.Context, name string, artifact []byte) (MergeResult, error) {
	var res MergeResult
	err := c.doJSON(ctx, http.MethodPost, "/v1/summaries/"+url.PathEscape(name)+"/merge", nil, "application/octet-stream", artifact, &res)
	return res, err
}

// QueryJSON POSTs a query-options document (raw JSON; nil means the
// default query) and returns the rendered response verbatim — the
// exact bytes `darminer query -json` would print.
func (c *Client) QueryJSON(ctx context.Context, name string, options []byte) ([]byte, QueryMeta, error) {
	payload, hdr, err := c.do(ctx, http.MethodPost, "/v1/summaries/"+url.PathEscape(name)+"/query", nil, "application/json", options)
	if err != nil {
		return nil, QueryMeta{}, err
	}
	return payload, QueryMeta{Version: hdr.Get("X-Dard-Summary-Version"), Cache: hdr.Get("X-Dard-Cache")}, nil
}

// DiffJSON POSTs a rule diff oldName → newName and returns the
// rendered document verbatim.
func (c *Client) DiffJSON(ctx context.Context, oldName, newName string, options []byte) ([]byte, error) {
	payload, _, err := c.do(ctx, http.MethodPost,
		"/v1/summaries/"+url.PathEscape(oldName)+"/diff/"+url.PathEscape(newName), nil, "application/json", options)
	return payload, err
}

// List fetches the catalog listing.
func (c *Client) List(ctx context.Context) ([]SummaryInfo, error) {
	var out []SummaryInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/summaries", nil, "", nil, &out)
	return out, err
}

// Metrics scrapes the flat JSON counter document.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	err := c.doJSON(ctx, http.MethodGet, "/metrics", nil, "", nil, &out)
	return out, err
}

// ClusterIngest POSTs a CSV relation to a darc coordinator, which
// shards it across the worker pool and installs the merged summary
// under name. Only coordinators serve this route; against a plain dard
// it answers 404.
func (c *Client) ClusterIngest(ctx context.Context, name string, csv []byte, opt IngestOptions) (IngestResult, error) {
	q := opt.query()
	q.Set("name", name)
	var res IngestResult
	err := c.doJSON(ctx, http.MethodPost, "/v1/cluster/ingest", q, "text/csv", csv, &res)
	return res, err
}
