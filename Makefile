# Build/verify entry points. `make verify` is the CI gate: a clean
# build, gofmt/go vet hygiene, the full test suite, and the same suite
# under the race detector (the parallel Phase I/II paths must stay
# race-free). `make lint` runs darlint, the custom go/analysis suite in
# internal/lint that enforces the determinism & concurrency invariants
# (map-order leaks, wall-clock/rand/env in result paths, unsanctioned
# goroutines, atomic/plain access mixes) and the serving-era invariants
# (canonical-key field coverage, error-chain preservation, context
# flow, I/O under mutexes, WaitGroup discipline). `make lintbudget`
# audits the repo's `//lint:allow` suppressions against the committed
# lint_budget.json — both gate verify.
#
# darlint is built against golang.org/x/tools pinned at
# v0.28.1-0.20250131145412-98746475647e, vendored under vendor/ (the
# subset of x/tools that ships inside the Go toolchain's cmd/vendor
# tree), so everything here builds fully offline.

GO ?= go
BIN := bin

.PHONY: build test race fuzz fuzzsmoke querydiff bench benchjson benchgate fmtcheck vet lint lintjson lintbudget darlint serversmoke storagesmoke clustersmoke crashsuite verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt must produce no diff outside vendor/.
fmtcheck:
	@out=$$(gofmt -l $$(find . -name '*.go' -not -path './vendor/*')); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

darlint:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/darlint ./cmd/darlint

# Run the determinism/concurrency analyzers over every package. The
# same binary also works standalone: ./bin/darlint ./...
lint: darlint
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/darlint ./...

# Machine-readable findings: a sorted JSON document (CI uploads it as
# an artifact). Exit 1 when any finding survives.
lintjson: darlint
	./$(BIN)/darlint -json -o darlint_findings.json ./...

# Audit `//lint:allow` suppressions against the committed budget.
# -exact fails on any drift, up or down: a new suppression needs a
# deliberate lint_budget.json edit in the same change, and a removed
# one must lower the budget with it.
lintbudget: darlint
	./$(BIN)/darlint -budget lint_budget.json -exact

# Short fuzz sessions for the ingestion paths; extend -fuzztime for a
# real campaign.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseRelation -fuzztime=30s ./cmd/darminer
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=30s ./internal/relation
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=30s ./internal/summary

# A short .acfsum decoder fuzz under the race detector, cheap enough to
# gate every CI run: Decode must never panic on hostile bytes, and
# whatever it accepts must re-encode canonically.
fuzzsmoke:
	$(GO) test -race -run='^$$' -fuzz=FuzzDecode -fuzztime=10s ./internal/summary
	$(GO) test -race -run='^$$' -fuzz=FuzzQueryOptions -fuzztime=10s ./internal/core

# The query-mode differential suite under the race detector: fused
# engine output (measures, filters, sweeps, top-k, diffs) must equal
# the explicit helper composition over the base rule set, bit for bit,
# across worker counts, merged shards, incremental snapshots, the HTTP
# endpoints and both CLI paths.
querydiff:
	$(GO) test -race -run 'TestQueryModes|TestMeasure|TestConviction|TestDiffRules' ./internal/core
	$(GO) test -race -run 'TestQueryMode|TestServedDiff|TestModeCache|TestDiffCache|TestDiffMetrics' ./internal/server
	$(GO) test -race -run 'TestGoldenQuery|TestOldSummary|TestDiffCLI|TestRemoteDiff' ./cmd/darminer

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Perf-regression harness: the Figure 6 series, parallel Phase I, the
# multi-core scaling series (GOMAXPROCS 1/2/4/8), the ingest-substrate
# microbenchmarks and the dard server query path, emitted as one JSON
# document with a derived scaling section.
# One iteration per benchmark keeps it cheap enough for a CI smoke job;
# BENCHTIME=3x steadies the numbers for before/after comparisons.
BENCHTIME ?= 1x
BENCHOUT ?= BENCH_PR9.json
benchjson:
	$(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -o $(BENCHOUT)

# Regression gate: compare the fresh $(BENCHOUT) against the newest
# committed BENCH_PR*.json baseline (excluding $(BENCHOUT) itself).
# Fails on a >10% throughput regression or a scaling-efficiency
# collapse when the baseline came from matching hardware; downgrades to
# warnings when the CPU fingerprint differs, since numbers from
# different machines aren't commensurable.
benchgate:
	@base=$$(ls BENCH_PR*.json 2>/dev/null | grep -vx '$(BENCHOUT)' | sort -V | tail -1); \
	if [ -z "$$base" ]; then echo "benchgate: no committed baseline BENCH_PR*.json"; exit 1; fi; \
	if [ ! -f "$(BENCHOUT)" ]; then echo "benchgate: $(BENCHOUT) missing; run make benchjson first"; exit 1; fi; \
	echo "benchgate: comparing $$base -> $(BENCHOUT)"; \
	$(GO) run ./cmd/benchjson -compare "$$base" $(BENCHOUT)

# End-to-end smoke of the dard daemon: build both binaries, start the
# server on a loopback port, ingest the golden dataset over HTTP, query
# it remotely and diff against the local CLI pipeline. Includes the
# storage act below.
serversmoke: build
	./scripts/server_smoke.sh

# The storage act alone, over the real binaries: ingest into a
# WAL-backed segment store, kill -9 mid-ingest, tear the WAL tail,
# restart, and diff the served query against the local CLI pipeline;
# then snapshot over the admin endpoint and restore into fresh segment
# and flat stores, each diffed again.
storagesmoke: build
	SMOKE_STORAGE_ONLY=1 ./scripts/server_smoke.sh

# Cluster smoke over the real binaries: a darc coordinator sharding an
# ingest across two dard workers, one of which is kill -9'd so the
# dispatcher must mark it down and requeue mid-ingest; a second run
# against a healthy pool must yield a byte-identical merged artifact
# and query JSON (the cluster determinism contract, DESIGN.md §14).
clustersmoke: build
	./scripts/cluster_smoke.sh

# The in-process crash-injection suite under the race detector: torn
# WAL tails at tabulated byte offsets, crashes mid-compaction, debris
# cleanup, repeated die/recover cycles, and the snapshot/restore
# round-trips.
crashsuite:
	$(GO) test -race -run 'TestCrash|TestSnapshot|TestRestore|TestSegment|TestManifest|TestFlat' ./internal/storage ./internal/server

# race already runs the Ingest→Summary→Query differential tests (they
# live in the ordinary test suite), so verify gates Query(Ingest(r)) ≡
# Mine(r) under the race detector on every run, and storagesmoke gates
# the durability story over the real binaries.
verify: build fmtcheck vet lint lintbudget test race fuzzsmoke querydiff storagesmoke
