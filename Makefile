# Build/verify entry points. `make verify` is the CI gate: a clean
# build, the full test suite, and the same suite under the race
# detector (the parallel Phase I/II paths must stay race-free).

GO ?= go

.PHONY: build test race fuzz bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz sessions for the ingestion paths; extend -fuzztime for a
# real campaign.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseRelation -fuzztime=30s ./cmd/darminer
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=30s ./internal/relation

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

verify: build test race
