// Package dar mines distance-based association rules (DARs) over interval
// data — a Go implementation of R. J. Miller and Y. Yang, "Association
// Rules over Interval Data", SIGMOD 1997.
//
// Classical association rules treat data values as opaque symbols: the
// rule Salary=40,000 is either matched exactly or not at all, so a tuple
// with Salary=40,100 contributes nothing. For interval data — ordered
// data where the separation between values has meaning — the paper
// replaces exact values with clusters and replaces support/confidence
// with distance-derived measures: a cluster must be dense (diameter
// within d0) and frequent (at least s0 tuples), and a rule
// C_X ⇒ C_Y holds with degree of association D0 when the consequent
// cluster's image is within D0 of the antecedent cluster's image on the
// consequent attributes. Lower degree means a stronger rule; under the
// 0/1 metric the degree is exactly 1 − classical confidence (Theorem
// 5.2), so DARs strictly generalize classical association rules.
//
// Mining runs in two phases with a single data scan plus optional
// descriptive rescans: Phase I builds one adaptive ACF-tree (a BIRCH
// CF-tree whose leaves carry projection sums onto every other attribute
// group) per attribute group, raising its diameter threshold and
// rebuilding whenever a memory budget is exceeded; Phase II works purely
// on the in-memory summaries — it builds the clustering graph, finds
// maximal cliques of mutually close clusters, and enumerates rules.
//
// # Quick start
//
//	schema := dar.MustSchema(
//		dar.Attribute{Name: "Age", Kind: dar.Interval},
//		dar.Attribute{Name: "Salary", Kind: dar.Interval},
//	)
//	rel := dar.NewRelation(schema)
//	// ... rel.AppendRow(age, salary) for each tuple ...
//	opt := dar.DefaultOptions()
//	opt.DiameterThreshold = 2500 // d0: cluster compactness, in data units
//	res, err := dar.Mine(rel, dar.SingletonPartitioning(schema), opt)
//	for _, r := range res.Rules {
//		fmt.Println(res.DescribeRule(r, rel, part))
//	}
//
// The package also exposes the paper's baselines: MineQAR (generalized
// quantitative association rules, Dfn 4.4 — clusters scored with
// classical support/confidence) and the equi-depth SA96 miner in
// internal/qar used by the experiment harness.
package dar

import (
	"io"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/relation"
	"repro/internal/summary"
)

// Re-exported data-model types. See the underlying packages for full
// method documentation.
type (
	// Relation is an in-memory relation (internal/relation.Relation).
	Relation = relation.Relation
	// Source abstracts where tuples come from: an in-memory Relation or
	// a disk-backed DiskRelation, scanned sequentially either way.
	Source = relation.Source
	// DiskRelation is a file-backed Source (one sequential file read per
	// scan, with a scan counter).
	DiskRelation = relation.DiskRelation
	// Schema describes a relation's attributes.
	Schema = relation.Schema
	// Attribute is one column: a name plus its scale of measurement.
	Attribute = relation.Attribute
	// Kind is an attribute's scale of measurement.
	Kind = relation.Kind
	// Partitioning groups attributes into the disjoint sets X_i the
	// algorithms are defined over.
	Partitioning = relation.Partitioning
	// Group is one attribute group of a partitioning.
	Group = relation.Group
)

// Attribute kinds.
const (
	// Interval marks ordered data with meaningful separations (the
	// paper's subject).
	Interval = relation.Interval
	// Ordinal marks ordered data whose separations carry no meaning.
	Ordinal = relation.Ordinal
	// Nominal marks unordered categorical data.
	Nominal = relation.Nominal
)

// Re-exported mining types.
type (
	// Options configures mining; start from DefaultOptions.
	Options = core.Options
	// Result is the outcome of Mine.
	Result = core.Result
	// Rule is a distance-based association rule.
	Rule = core.Rule
	// Cluster is a frequent Phase I cluster.
	Cluster = core.Cluster
	// QARResult is the outcome of the generalized-QAR baseline.
	QARResult = core.QARResult
	// QARRule is a cluster rule with classical measures.
	QARRule = core.QARRule
	// ClusterMetric selects the cluster distance D (D0, D1, D2, ...).
	ClusterMetric = distance.ClusterMetric
)

// Cluster distance metrics (Section 5 / [ZRL96]).
const (
	// D0 is the Euclidean distance between centroids.
	D0 = distance.D0
	// D1 is the Manhattan distance between centroids (Eq. 5).
	D1 = distance.D1
	// D2 is the average inter-cluster distance (Eq. 6).
	D2 = distance.D2
)

// NewSchema builds a schema; attribute names must be unique and non-empty.
func NewSchema(attrs ...Attribute) (*Schema, error) { return relation.NewSchema(attrs...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...Attribute) *Schema { return relation.MustSchema(attrs...) }

// NewRelation returns an empty relation over the schema.
func NewRelation(s *Schema) *Relation { return relation.NewRelation(s) }

// ReadCSV reads a relation in the annotated-header CSV format
// ("name:kind,..." header, one row per tuple).
func ReadCSV(r io.Reader) (*Relation, error) { return relation.ReadCSV(r) }

// WriteCSV writes a relation in the annotated-header CSV format.
func WriteCSV(w io.Writer, rel *Relation) error { return relation.WriteCSV(w, rel) }

// SingletonPartitioning puts every attribute in its own group — the
// common case.
func SingletonPartitioning(s *Schema) *Partitioning {
	return relation.SingletonPartitioning(s)
}

// NewPartitioning builds a partitioning with explicit (possibly
// multi-attribute) groups.
func NewPartitioning(s *Schema, groups []Group) (*Partitioning, error) {
	return relation.NewPartitioning(s, groups)
}

// ParseGroupsSpec builds a partitioning from a comma-separated spec of
// "+"-joined attribute names ("lat+lon,price"); attributes not
// mentioned get their own singleton group. An empty spec is
// all-singletons. This is the syntax of `darminer -groups` and the dard
// ingest endpoint.
func ParseGroupsSpec(s *Schema, spec string) (*Partitioning, error) {
	return relation.ParseGroupsSpec(s, spec)
}

// DefaultOptions returns the paper's evaluation defaults. Callers should
// set DiameterThreshold (d0) to a sensible compactness scale for their
// data; everything else has reasonable defaults.
func DefaultOptions() Options { return core.DefaultOptions() }

// Mine discovers distance-based association rules in the source under
// the partitioning.
func Mine(rel Source, part *Partitioning, opt Options) (*Result, error) {
	m, err := core.NewMiner(rel, part, opt)
	if err != nil {
		return nil, err
	}
	return m.Mine()
}

// SpillToDisk writes the relation to a binary tuple file and returns a
// disk-backed Source over it, for data sets that should not be held in
// memory during mining.
func SpillToDisk(rel *Relation, path string) (*DiskRelation, error) {
	return relation.SpillToDisk(rel, path)
}

// OpenDisk opens an existing binary tuple file against its schema.
func OpenDisk(path string, schema *Schema) (*DiskRelation, error) {
	return relation.OpenDisk(path, schema)
}

// MineQAR runs the generalized quantitative association rule baseline of
// Section 4.3 (distance-aware clusters, classical measures).
func MineQAR(rel Source, part *Partitioning, opt Options, minConfidence float64) (*QARResult, error) {
	m, err := core.NewQARMiner(rel, part, opt, minConfidence)
	if err != nil {
		return nil, err
	}
	return m.Mine()
}

// IncrementalMiner ingests tuples one at a time and can snapshot rules at
// any point — see core.IncrementalMiner.
type IncrementalMiner = core.IncrementalMiner

// NewIncrementalMiner builds a streaming miner. Nominal groups are
// supported: ingest-time histograms stand in for the co-occurrence
// rescan. Options.PostScan must be off — a stream keeps no relation to
// rescan, so snapshots use approximate boxes and leave rule supports
// uncounted.
func NewIncrementalMiner(part *Partitioning, opt Options) (*IncrementalMiner, error) {
	return core.NewIncrementalMiner(part, opt)
}

// Summary is a persistable, mergeable Phase I artifact: per-group
// frequent-cluster candidates (ACFs) plus the provenance a query needs —
// schema and partitioning, tuple count, thresholds, rebuild statistics.
// Produce one with Ingest (or IncrementalMiner.Summary), serialize it
// with EncodeSummary/DecodeSummary, combine disjoint shards with
// MergeSummaries, and answer rule queries with Query.
type Summary = summary.Summary

// QueryOptions are the per-query Phase II knobs — everything that can
// change between two queries over the same Summary without re-ingesting.
type QueryOptions = core.QueryOptions

// DefaultQueryOptions mirrors DefaultOptions' Phase II settings.
func DefaultQueryOptions() QueryOptions { return core.DefaultQueryOptions() }

// Ingest runs Phase I over the source and returns its Summary. One
// ingest serves arbitrarily many Query calls; summaries of disjoint
// shards of a relation combine with MergeSummaries. Ingest-time options
// (diameter thresholds, memory budget, tree geometry) are fixed here and
// recorded in the Summary; per-query options are supplied to Query.
func Ingest(rel Source, part *Partitioning, opt Options) (*Summary, error) {
	return core.Ingest(rel, part, opt)
}

// Query answers a rule query from a Summary alone — no relation, no
// rescan. Over the same relation and options it produces bit-identical
// rules to Mine with PostScan disabled; the PostScan extras (exact
// bounding boxes, rule support counts) need the relation and are not
// available on this path.
//
// Beyond the base rule set, QueryOptions selects server-side
// post-processing: interestingness measures (Measures), antecedent and
// consequent group filters, a degree-factor sweep, and top-k
// truncation. Each mode is also available as a standalone helper
// (AnnotateMeasures, FilterRules via group indices, SweepRules,
// Result.TopRules) producing bit-identical output.
func Query(s *Summary, q QueryOptions) (*Result, error) {
	return core.QuerySummary(s, q)
}

// Query-mode types (see core for method documentation).
type (
	// RuleMeasures are per-rule interestingness measures derived from
	// the summary alone — support upper bound, confidence analogue,
	// lift, conviction.
	RuleMeasures = core.RuleMeasures
	// SweepPoint is one entry of a degree-factor sweep.
	SweepPoint = core.SweepPoint
	// RuleDiff is the outcome of DiffRules.
	RuleDiff = core.RuleDiff
	// DiffEntry is a rule present on only one side of a diff.
	DiffEntry = core.DiffEntry
	// DiffChange is a rule whose degree changed between two summaries.
	DiffChange = core.DiffChange
)

// ConvictionInfinite is the sentinel RuleMeasures.Conviction takes when
// the measure diverges (confidence 1).
const ConvictionInfinite = core.ConvictionInfinite

// ErrBadQuery marks query options that can never produce a result;
// every QueryOptions validation failure wraps it.
var ErrBadQuery = core.ErrBadQuery

// NormalizeGroupFilters sorts and deduplicates the group filters of the
// options in place, establishing the canonical form Validate requires.
func NormalizeGroupFilters(q *QueryOptions) { core.NormalizeGroupFilters(q) }

// AnnotateMeasures attaches RuleMeasures to every rule of the result.
func AnnotateMeasures(res *Result) { core.AnnotateMeasures(res) }

// DiffRules compares two mined results by rendered rule signature,
// reporting added, removed, changed-degree and unchanged rules. Each
// side renders through its own source and partitioning, so summaries
// whose nominal dictionaries disagree still compare by value.
func DiffRules(oldRes, newRes *Result, oldRel, newRel Source, oldPart, newPart *Partitioning) RuleDiff {
	return core.DiffRules(oldRes, newRes, oldRel, newRel, oldPart, newPart)
}

// WriteDiffJSON renders a diff as indented JSON — the exact bytes
// `darminer diff -json` prints and the dard diff endpoint serves.
func WriteDiffJSON(w io.Writer, d RuleDiff) error { return core.WriteDiffJSON(w, d) }

// MergeSummaries combines summaries of two disjoint shards of a
// relation into a summary of their union, by ACF additivity (Theorem
// 4.2). The shards must share a schema fingerprint and ingest
// configuration; nominal dictionaries may differ (codes are remapped).
func MergeSummaries(a, b *Summary) (*Summary, error) {
	return summary.Merge(a, b)
}

// EncodeSummary serializes a Summary in the versioned .acfsum binary
// format (magic "ACFS", format version, CRC-32 footer).
func EncodeSummary(s *Summary) ([]byte, error) { return summary.Encode(s) }

// DecodeSummary parses a .acfsum blob, rejecting unknown versions and
// corrupt or non-canonical encodings.
func DecodeSummary(data []byte) (*Summary, error) { return summary.Decode(data) }

// WriteJSON exports a mining result as indented JSON for downstream
// tooling.
func WriteJSON(w io.Writer, res *Result, rel Source, part *Partitioning) error {
	return core.WriteJSON(w, res, rel, part)
}

// AdvisorOptions tunes SuggestThresholds.
type AdvisorOptions = core.AdvisorOptions

// SuggestThresholds derives per-group diameter thresholds (d0) from the
// data itself — the guidance the paper notes classical miners never give
// their users. The result plugs into Options.DiameterThresholds.
func SuggestThresholds(rel Source, part *Partitioning, opt AdvisorOptions) ([]float64, error) {
	return core.SuggestThresholds(rel, part, opt)
}

// Ranked returns a copy of the relation with every ordinal attribute's
// values replaced by their (average) ranks. Ordinal data carries order
// but no meaningful separations, so clustering it directly would invent
// distances; rank space gives the equi-depth semantics the paper
// prescribes for ordinal attributes while letting the same machinery run.
func Ranked(rel *Relation) *Relation { return relation.Ranked(rel) }
