# shellcheck shell=bash
# Shared helpers for the smoke scripts (server_smoke.sh,
# cluster_smoke.sh). Source from the repo root after `set -euo
# pipefail`; callers own TMP and their EXIT traps.
#
# Every daemon here binds 127.0.0.1:0 and reports the kernel-assigned
# port on its "listening on" log line, so parallel smoke runs never
# fight over a port.

# start_daemon <bin> <logfile> <args...>: launch the daemon on a
# loopback port, wait for its listen line, and set DAEMON_PID / ADDR.
start_daemon() {
    local bin=$1 log=$2; shift 2
    "$bin" -addr 127.0.0.1:0 "$@" 2>"$log" &
    DAEMON_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log" | head -n1)
        [ -n "$ADDR" ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null || {
            echo "$(basename "$bin") died at startup:"; cat "$log"; exit 1
        }
        sleep 0.1
    done
    [ -n "$ADDR" ] || { echo "$(basename "$bin") never reported its address:"; cat "$log"; exit 1; }
}

# stop_daemon <pid> <logfile>: SIGTERM and require a clean drain.
stop_daemon() {
    local pid=$1 log=$2
    kill -TERM "$pid"
    local ok=1
    wait "$pid" || ok=0
    [ "$ok" = 1 ] || { echo "daemon exited non-zero on SIGTERM:"; cat "$log"; exit 1; }
}

# kill_hard <pid>: kill -9 if still alive and reap quietly; a no-op on
# an empty pid.
kill_hard() {
    local pid=$1
    [ -n "$pid" ] || return 0
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
}

# metric_at_least <metrics.json> <key> <min>: assert a flat-JSON
# counter, printing the whole scrape on failure.
metric_at_least() {
    local file=$1 key=$2 min=$3
    local got
    got=$(grep -o "\"$key\": [0-9]*" "$file" | grep -o '[0-9]*$' || true)
    [ "${got:-0}" -ge "$min" ] || {
        echo "FAIL: $key = ${got:-missing}, want >= $min"; cat "$file"; exit 1
    }
}
