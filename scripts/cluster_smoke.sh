#!/usr/bin/env bash
# End-to-end smoke test of the darc cluster, in two acts over the real
# binaries (darc coordinator + dard workers + darminer client).
#
# Act 1 (worker death): start a coordinator over two workers with the
# health prober effectively off (-health-interval 1h), then kill -9 one
# worker AFTER the pool is formed but before dispatch. The coordinator
# still believes the corpse healthy, so the ingest hands it a shard,
# discovers the death mid-ingest, marks the worker down and requeues
# the shard onto the survivor — asserted via the ingest ack's retries
# field, cluster_shards_requeued_total / cluster_worker_markdowns_total
# on /metrics, and /v1/cluster/workers health rows.
#
# Act 2 (determinism): rerun the identical ingest (-shards pinned to 4)
# against a fresh coordinator with a fully healthy pool. The cluster
# determinism contract (DESIGN.md §14) demands the merged .acfsum
# artifact and the served query JSON be byte-identical between the two
# acts: worker death, retries and requeues must never leak into the
# mined output. Run via `make clustersmoke`.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke_lib.sh

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$TMP/dard" ./cmd/dard
go build -o "$TMP/darc" ./cmd/darc
go build -o "$TMP/darminer" ./cmd/darminer

DATASET=cmd/darminer/testdata/interval_input.csv

# start_worker <n>: a dard worker with its own data dir; sets Wn_PID
# and Wn_ADDR.
start_worker() {
    local n=$1
    start_daemon "$TMP/dard" "$TMP/worker$n.log" -data "$TMP/worker$n"
    PIDS+=("$DAEMON_PID")
    printf -v "W${n}_PID" '%s' "$DAEMON_PID"
    printf -v "W${n}_ADDR" '%s' "$ADDR"
}

# start_darc <n> <workers>: a coordinator with shards pinned to 4 so
# both acts share one shard plan, fast requeue backoff, and the
# background prober parked (the act-1 kill must be discovered by the
# dispatcher itself, mid-ingest, not by a probe beforehand).
start_darc() {
    local n=$1 workers=$2
    start_daemon "$TMP/darc" "$TMP/darc$n.log" -data "$TMP/darc$n" \
        -workers "$workers" -shards 4 -health-interval 1h \
        -backoff 5ms -backoff-cap 50ms
    PIDS+=("$DAEMON_PID")
    printf -v "DARC${n}_PID" '%s' "$DAEMON_PID"
    printf -v "DARC${n}_ADDR" '%s' "$ADDR"
}

# cluster_ingest <coordinator-addr> <out>: shard the golden dataset
# across the pool.
cluster_ingest() {
    curl -sfS -X POST --data-binary @"$DATASET" \
        "http://$1/v1/cluster/ingest?name=smoke&d0=5" >"$2"
    grep -q '"shards": 4' "$2" || { echo "unexpected cluster ingest ack:"; cat "$2"; exit 1; }
}

# served_query <coordinator-addr> <out>: query the merged summary,
# durations stripped.
served_query() {
    "$TMP/darminer" query -addr "http://$1" -minsup 0.2 -degree 1 -json smoke \
        | grep -v '"durationMs"' >"$2"
}

echo "== [act 1] starting two workers and the coordinator"
start_worker 1
start_worker 2
start_darc 1 "http://$W1_ADDR,http://$W2_ADDR"
echo "   darc on $DARC1_ADDR over workers $W1_ADDR, $W2_ADDR"

echo "== [act 1] kill -9 worker 2 (coordinator still believes it healthy)"
kill_hard "$W2_PID"

echo "== [act 1] sharded ingest must survive via requeue onto worker 1"
cluster_ingest "$DARC1_ADDR" "$TMP/ingest1.json"
RETRIES=$(grep -o '"retries": [0-9]*' "$TMP/ingest1.json" | grep -o '[0-9]*$')
[ "${RETRIES:-0}" -ge 1 ] || {
    echo "FAIL: ingest ack retries = ${RETRIES:-missing}, want >= 1 (no shard hit the corpse?)"
    cat "$TMP/ingest1.json"; exit 1
}

echo "== [act 1] checking cluster metrics and worker health"
curl -sfS "http://$DARC1_ADDR/metrics" >"$TMP/metrics1.json"
metric_at_least "$TMP/metrics1.json" cluster_ingests_total 1
metric_at_least "$TMP/metrics1.json" cluster_shards_requeued_total 1
metric_at_least "$TMP/metrics1.json" cluster_worker_markdowns_total 1
curl -sfS "http://$DARC1_ADDR/v1/cluster/workers" >"$TMP/workers1.json"
grep -q '"healthy": false' "$TMP/workers1.json" || {
    echo "FAIL: dead worker not marked down:"; cat "$TMP/workers1.json"; exit 1
}

served_query "$DARC1_ADDR" "$TMP/query1.stripped"
cp "$TMP/darc1/smoke.acfsum" "$TMP/artifact1.acfsum"

echo "== [act 1] draining the survivors"
stop_daemon "$DARC1_PID" "$TMP/darc1.log"
stop_daemon "$W1_PID" "$TMP/worker1.log"

echo "== [act 2] same ingest against a fresh, fully healthy pool"
start_worker 3
start_worker 4
start_darc 2 "http://$W3_ADDR,http://$W4_ADDR"
echo "   darc on $DARC2_ADDR over workers $W3_ADDR, $W4_ADDR"
cluster_ingest "$DARC2_ADDR" "$TMP/ingest2.json"
served_query "$DARC2_ADDR" "$TMP/query2.stripped"

echo "== [act 2] merged artifact must be byte-identical despite act 1's worker death"
if ! cmp "$TMP/artifact1.acfsum" "$TMP/darc2/smoke.acfsum"; then
    echo "FAIL: requeued ingest produced a different .acfsum than the healthy-pool ingest"
    exit 1
fi

echo "== [act 2] served query JSON must match act 1 (durationMs stripped)"
if ! diff -u "$TMP/query1.stripped" "$TMP/query2.stripped"; then
    echo "FAIL: served rules diverge between the worker-death run and the healthy run"
    exit 1
fi

stop_daemon "$DARC2_PID" "$TMP/darc2.log"
stop_daemon "$W3_PID" "$TMP/worker3.log"
stop_daemon "$W4_PID" "$TMP/worker4.log"

echo "PASS: cluster smoke (requeue after worker death, bit-identical artifact and query across runs)"
