#!/usr/bin/env bash
# End-to-end smoke test of the dard daemon, in two acts.
#
# Act 1 (flat storage): start dard on a loopback port, ingest the
# golden interval dataset over HTTP, query it through `darminer query
# -addr`, and diff the served JSON against the local `darminer ingest |
# query -json` pipeline (wall-clock lines aside, the two must be
# byte-identical). Also scrapes /metrics and checks the daemon drains
# cleanly on SIGTERM. Run via `make serversmoke`.
#
# Act 2 (segment storage): the crash gauntlet over the real binaries.
# Ingest into a WAL-backed segment store, kill -9 the daemon while a
# background ingest loop is mid-flight, tear the WAL tail with garbage
# bytes, restart, and demand the acked summary still answers queries
# byte-identical to the local pipeline. Then pull a snapshot archive
# over the admin endpoint and restore it into fresh segment AND flat
# data dirs — each must serve the same bytes again. Run alone via
# `make storagesmoke` (SMOKE_STORAGE_ONLY=1).
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/smoke_lib.sh

TMP=$(mktemp -d)
DARD_PID=""
CHURN_PID=""
cleanup() {
    for pid in "$CHURN_PID" "$DARD_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

# start_dard <logfile> <args...>: launch the daemon via the shared
# helper, keeping DARD_PID for the kill -9 acts.
start_dard() {
    local log=$1; shift
    start_daemon "$TMP/dard" "$log" "$@"
    DARD_PID=$DAEMON_PID
}

# stop_dard <logfile>: SIGTERM and require a clean drain.
stop_dard() {
    stop_daemon "$DARD_PID" "$1"
    DARD_PID=""
}

# served_query <out>: query the smoke summary remotely, durations
# stripped.
served_query() {
    "$TMP/darminer" query -addr "http://$ADDR" -minsup 0.2 -degree 1 -json smoke \
        | grep -v '"durationMs"' >"$1"
}

echo "== building binaries"
go build -o "$TMP/dard" ./cmd/dard
go build -o "$TMP/darminer" ./cmd/darminer

DATASET=cmd/darminer/testdata/interval_input.csv

echo "== running the local CLI pipeline"
"$TMP/darminer" ingest -d0 5 -o "$TMP/local.acfsum" "$DATASET" >/dev/null
"$TMP/darminer" query -minsup 0.2 -degree 1 -json "$TMP/local.acfsum" \
    | grep -v '"durationMs"' >"$TMP/local.stripped"

if [ "${SMOKE_STORAGE_ONLY:-}" != 1 ]; then
    echo "== [flat] starting dard"
    start_dard "$TMP/dard.log" -data "$TMP/data"
    echo "   dard is listening on $ADDR"

    echo "== [flat] ingesting $DATASET over HTTP"
    curl -sfS -X POST --data-binary @"$DATASET" \
        "http://$ADDR/v1/ingest?name=smoke&d0=5" >"$TMP/ingest.json"
    grep -q '"tuples"' "$TMP/ingest.json" || { echo "unexpected ingest ack:"; cat "$TMP/ingest.json"; exit 1; }

    echo "== [flat] diffing served vs local (durationMs stripped)"
    served_query "$TMP/served.stripped"
    if ! diff -u "$TMP/local.stripped" "$TMP/served.stripped"; then
        echo "FAIL: served query diverges from the local CLI pipeline"
        exit 1
    fi

    echo "== [flat] scraping /metrics"
    curl -sfS "http://$ADDR/metrics" >"$TMP/metrics.json"
    grep -q '"query_requests_total": 1' "$TMP/metrics.json" || {
        echo "unexpected metrics:"; cat "$TMP/metrics.json"; exit 1
    }
    grep -q '"ingest_requests_total": 1' "$TMP/metrics.json" || {
        echo "unexpected metrics:"; cat "$TMP/metrics.json"; exit 1
    }

    echo "== [flat] draining on SIGTERM"
    stop_dard "$TMP/dard.log"
    grep -q "bye" "$TMP/dard.log" || { echo "dard never said goodbye:"; cat "$TMP/dard.log"; exit 1; }
fi

echo "== [segment] starting dard over a WAL-backed store"
SEGDATA="$TMP/segdata"
start_dard "$TMP/seg1.log" -data "$SEGDATA" -storage segment
echo "   dard is listening on $ADDR"

echo "== [segment] ingesting $DATASET over HTTP"
curl -sfS -X POST --data-binary @"$DATASET" \
    "http://$ADDR/v1/ingest?name=smoke&d0=5" >"$TMP/seg_ingest.json"
grep -q '"tuples"' "$TMP/seg_ingest.json" || { echo "unexpected ingest ack:"; cat "$TMP/seg_ingest.json"; exit 1; }
served_query "$TMP/seg_served1.stripped"
diff -u "$TMP/local.stripped" "$TMP/seg_served1.stripped" >/dev/null || {
    echo "FAIL: fresh segment store diverges from the local CLI pipeline"; exit 1
}

echo "== [segment] kill -9 mid-ingest"
(
    while :; do
        curl -sS -X POST --data-binary @"$DATASET" \
            "http://$ADDR/v1/ingest?name=churn&d0=5" >/dev/null 2>&1 || exit 0
    done
) &
CHURN_PID=$!
sleep 0.3
kill -9 "$DARD_PID"
wait "$DARD_PID" 2>/dev/null || true
DARD_PID=""
wait "$CHURN_PID" 2>/dev/null || true
CHURN_PID=""

echo "== [segment] tearing the WAL tail"
TAIL_WAL=$(ls "$SEGDATA"/wal-*.log | sort | tail -n1)
[ -n "$TAIL_WAL" ] || { echo "no WAL files in $SEGDATA"; exit 1; }
printf '\x40\x00\x00\x00\xde\xad\xbe\xef\x01\x02' >>"$TAIL_WAL"

echo "== [segment] restarting over the crashed store"
start_dard "$TMP/seg2.log" -data "$SEGDATA" -storage segment
echo "   dard is listening on $ADDR"
curl -sfS "http://$ADDR/metrics" >"$TMP/seg_metrics.json"
metric_at_least "$TMP/seg_metrics.json" storage_wal_replays 1

echo "== [segment] diffing the replayed store vs local"
served_query "$TMP/seg_served2.stripped"
if ! diff -u "$TMP/local.stripped" "$TMP/seg_served2.stripped"; then
    echo "FAIL: replayed segment store diverges from the local CLI pipeline"
    exit 1
fi

echo "== [segment] pulling a snapshot archive"
curl -sfS -X POST -o "$TMP/snap.darsnap" "http://$ADDR/v1/admin/snapshot"
[ -s "$TMP/snap.darsnap" ] || { echo "empty snapshot archive"; exit 1; }
stop_dard "$TMP/seg2.log"

for kind in segment flat; do
    echo "== [restore] serving the snapshot from a fresh $kind store"
    start_dard "$TMP/restore_$kind.log" -data "$TMP/restore_$kind" \
        -storage "$kind" -restore "$TMP/snap.darsnap"
    served_query "$TMP/restored_$kind.stripped"
    if ! diff -u "$TMP/local.stripped" "$TMP/restored_$kind.stripped"; then
        echo "FAIL: snapshot restored into a $kind store diverges from the local CLI pipeline"
        exit 1
    fi
    stop_dard "$TMP/restore_$kind.log"
done

if [ "${SMOKE_STORAGE_ONLY:-}" = 1 ]; then
    echo "PASS: storage smoke (crash + torn WAL replay == local, snapshot restores into both backends)"
else
    echo "PASS: server smoke (served == local, metrics sane, clean drain, crash-safe segment store)"
fi
