#!/usr/bin/env bash
# End-to-end smoke test of the dard daemon: start it on a loopback
# port, ingest the golden interval dataset over HTTP, query it through
# `darminer query -addr`, and diff the served JSON against the local
# `darminer ingest | query -json` pipeline (wall-clock lines aside, the
# two must be byte-identical). Also scrapes /metrics and checks the
# daemon drains cleanly on SIGTERM. Run via `make serversmoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
DARD_PID=""
cleanup() {
    if [ -n "$DARD_PID" ] && kill -0 "$DARD_PID" 2>/dev/null; then
        kill -9 "$DARD_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$TMP/dard" ./cmd/dard
go build -o "$TMP/darminer" ./cmd/darminer

echo "== starting dard"
"$TMP/dard" -addr 127.0.0.1:0 -data "$TMP/data" 2>"$TMP/dard.log" &
DARD_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$TMP/dard.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$DARD_PID" || { echo "dard died at startup:"; cat "$TMP/dard.log"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "dard never reported its address:"; cat "$TMP/dard.log"; exit 1; }
echo "   dard is listening on $ADDR"

DATASET=cmd/darminer/testdata/interval_input.csv

echo "== ingesting $DATASET over HTTP"
curl -sfS -X POST --data-binary @"$DATASET" \
    "http://$ADDR/v1/ingest?name=smoke&d0=5" >"$TMP/ingest.json"
grep -q '"tuples"' "$TMP/ingest.json" || { echo "unexpected ingest ack:"; cat "$TMP/ingest.json"; exit 1; }

echo "== querying remotely via darminer -addr"
"$TMP/darminer" query -addr "http://$ADDR" -minsup 0.2 -degree 1 -json smoke >"$TMP/served.json"

echo "== running the local CLI pipeline"
"$TMP/darminer" ingest -d0 5 -o "$TMP/local.acfsum" "$DATASET" >/dev/null
"$TMP/darminer" query -minsup 0.2 -degree 1 -json "$TMP/local.acfsum" >"$TMP/local.json"

echo "== diffing served vs local (durationMs stripped)"
grep -v '"durationMs"' "$TMP/served.json" >"$TMP/served.stripped"
grep -v '"durationMs"' "$TMP/local.json" >"$TMP/local.stripped"
if ! diff -u "$TMP/local.stripped" "$TMP/served.stripped"; then
    echo "FAIL: served query diverges from the local CLI pipeline"
    exit 1
fi

echo "== scraping /metrics"
curl -sfS "http://$ADDR/metrics" >"$TMP/metrics.json"
grep -q '"query_requests_total": 1' "$TMP/metrics.json" || {
    echo "unexpected metrics:"; cat "$TMP/metrics.json"; exit 1
}
grep -q '"ingest_requests_total": 1' "$TMP/metrics.json" || {
    echo "unexpected metrics:"; cat "$TMP/metrics.json"; exit 1
}

echo "== draining on SIGTERM"
kill -TERM "$DARD_PID"
DRAIN_OK=1
wait "$DARD_PID" || DRAIN_OK=0
DARD_PID=""
[ "$DRAIN_OK" = 1 ] || { echo "dard exited non-zero on SIGTERM:"; cat "$TMP/dard.log"; exit 1; }
grep -q "bye" "$TMP/dard.log" || { echo "dard never said goodbye:"; cat "$TMP/dard.log"; exit 1; }

echo "PASS: server smoke (served == local, metrics sane, clean drain)"
