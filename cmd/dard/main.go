// Command dard runs the DAR mining daemon: a long-running HTTP server
// over a catalog of named .acfsum summaries. See internal/server for
// the API surface and DESIGN.md §9 for the architecture.
//
// Usage:
//
//	dard -addr :8344 -data /var/lib/dard
//
// The process drains gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight requests get up to -drain to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dard", flag.ExitOnError)
	addr := fs.String("addr", ":8344", "listen address")
	data := fs.String("data", "./dard-data", "data dir holding .acfsum artifacts")
	catalogBytes := fs.Int64("catalog-bytes", 0, "in-memory byte budget for loaded summaries (0 = 1GiB, <0 = unlimited)")
	cacheBytes := fs.Int64("cache-bytes", 0, "result cache byte budget (0 = 64MiB, <0 = disabled)")
	timeout := fs.Duration("timeout", 0, "per-query execution budget (0 = 30s)")
	maxIngestBytes := fs.Int64("max-ingest-bytes", 0, "ingest/merge body limit (0 = 256MiB)")
	maxQueryBytes := fs.Int64("max-query-bytes", 0, "query body limit (0 = 1MiB)")
	storageKind := fs.String("storage", "flat", "storage backend: flat (one .acfsum file per summary) or segment (WAL + segment store)")
	restore := fs.String("restore", "", "snapshot archive to restore into an empty data dir before serving")
	drain := fs.Duration("drain", 15*time.Second, "graceful shutdown budget for in-flight requests")
	fs.Parse(args)

	logger := log.New(os.Stderr, "dard: ", log.LstdFlags)
	cfg := server.Config{
		DataDir:        *data,
		CatalogBytes:   *catalogBytes,
		CacheBytes:     *cacheBytes,
		QueryTimeout:   *timeout,
		MaxIngestBytes: *maxIngestBytes,
		MaxQueryBytes:  *maxQueryBytes,
		Storage:        *storageKind,
	}
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			logger.Print(err)
			return 1
		}
		defer f.Close()
		cfg.RestoreFrom = f
	}
	srv, notes, err := server.New(cfg)
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer func() {
		if err := srv.Close(); err != nil {
			logger.Printf("closing storage: %v", err)
		}
	}()
	for _, n := range notes {
		logger.Print(n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Print(err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// The smoke script greps for this line to learn the bound port.
	logger.Printf("listening on %s (data dir %s, storage %s)", ln.Addr(), *data, *storageKind)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Print(err)
		return 1
	case sig := <-stop:
		logger.Printf("caught %v, draining for up to %v", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
			return 1
		}
	}
	fmt.Fprintln(os.Stderr, "dard: bye")
	return 0
}
