package main

import (
	"reflect"
	"testing"
)

func TestFig6Scales(t *testing.T) {
	if got := fig6Scales(500000); !reflect.DeepEqual(got, []int{100000, 200000, 300000, 400000, 500000}) {
		t.Errorf("fig6Scales(500000) = %v", got)
	}
	if got := fig6Scales(10); !reflect.DeepEqual(got, []int{2, 4, 6, 8, 10}) {
		t.Errorf("fig6Scales(10) = %v", got)
	}
	// Degenerate request still yields five increasing scales.
	got := fig6Scales(0)
	if len(got) != 5 || got[0] < 1 {
		t.Errorf("fig6Scales(0) = %v", got)
	}
}

func TestRunExperimentsUnknown(t *testing.T) {
	if err := runExperiments("bogus", 1000, 1, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// The fast experiments run end-to-end through the CLI driver (writing to
// stdout; this is a smoke test of the dispatch wiring).
func TestRunExperimentsFast(t *testing.T) {
	for _, which := range []string{"fig1", "fig2", "fig4", "baseline"} {
		if err := runExperiments(which, 1000, 1, ""); err != nil {
			t.Errorf("runExperiments(%s): %v", which, err)
		}
	}
}
