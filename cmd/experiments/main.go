// Command experiments regenerates every figure and evaluation claim of
// the paper (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// the recorded paper-vs-measured comparison).
//
// Usage:
//
//	experiments [-run all|fig1|fig2|fig4|thm5|fig6|stability|prune|adaptive|sensitivity|insurance|baseline] [-scale N] [-seed S]
//
// -scale sets the largest relation size of the fig6 sweep (default
// 500000, the paper's half-million tuples; use something smaller for a
// quick look).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run (all, fig1, fig2, fig4, thm5, fig6, prune, adaptive, refine, drift, classical, robustness, sensitivity, insurance, comparison, baseline)")
	scale := flag.Int("scale", 500000, "largest relation size for the fig6 sweep")
	seed := flag.Int64("seed", 1, "workload generator seed")
	tsv := flag.String("tsv", "", "also write the fig6 series as TSV to this file (for plotting)")
	flag.Parse()

	if err := runExperiments(*run, *scale, *seed, *tsv); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runExperiments(which string, scale int, seed int64, tsvPath string) error {
	w := os.Stdout
	section := func(name string) { fmt.Fprintf(w, "\n=== %s ===\n", name) }
	want := func(name string) bool { return which == "all" || which == name }
	ran := false

	if want("fig1") {
		ran = true
		section("E1 / Figure 1")
		res, err := experiments.RunFig1()
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("fig2") {
		ran = true
		section("E2 / Figure 2")
		res, err := experiments.RunFig2()
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("fig4") {
		ran = true
		section("E3 / Figure 4")
		res, err := experiments.RunFig4()
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("thm5") {
		ran = true
		section("E4 / Theorems 5.1 & 5.2")
		res, err := experiments.RunThm5(200, seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("fig6") || want("stability") || want("phase2") {
		ran = true
		section("E5-E7 / Figure 6 + §7.2 claims")
		scales := fig6Scales(scale)
		fmt.Fprintf(w, "scales: %v\n", scales)
		res, err := experiments.RunFig6(scales, seed)
		if err != nil {
			return err
		}
		res.Print(w)
		if tsvPath != "" {
			f, err := os.Create(tsvPath)
			if err != nil {
				return err
			}
			res.WriteTSV(f)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "fig6 series written to %s\n", tsvPath)
		}
	}
	if want("prune") {
		ran = true
		section("E8 / §6.2 pruning ablation")
		res, err := experiments.RunPrune(min(scale, 100000), seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("adaptive") {
		ran = true
		section("E9 / adaptive memory sweep")
		res, err := experiments.RunAdaptive(min(scale, 100000),
			[]int{256 << 10, 512 << 10, 1 << 20, 2 << 20, 5 << 20, 10 << 20}, seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("robustness") {
		ran = true
		section("E15 / metric robustness under contamination")
		res, err := experiments.RunRobustness(min(scale, 50000), []float64{0, 0.01, 0.02, 0.05, 0.10}, seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("classical") {
		ran = true
		section("E14 / adaptive classical 1-itemset counting (Figure 3)")
		res, err := experiments.RunAdaptiveClassical(min(scale, 50000), []int{0, 64, 16, 8, 4}, seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("drift") {
		ran = true
		section("E13 / centroid drift vs k-means reference")
		top := min(scale, 100000)
		res, err := experiments.RunDrift([]int{top / 4, top / 2, top}, seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("refine") {
		ran = true
		section("E12 / global refinement ablation")
		res, err := experiments.RunRefine(min(scale, 100000), seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("sensitivity") {
		ran = true
		section("E10 / threshold sensitivity")
		res, err := experiments.RunSensitivity(min(scale, 50000),
			[]float64{0.5, 1, 2, 4, 8},
			[]float64{0.01, 0.03, 0.05, 0.10},
			[]float64{0.5, 1, 2}, seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("insurance") {
		ran = true
		section("E11 / §5.2 insurance N:1 rules")
		res, err := experiments.RunInsurance(min(scale, 20000), seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("comparison") {
		ran = true
		section("E16 / four-way method comparison")
		res, err := experiments.RunComparison(min(scale, 20000), seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if want("baseline") {
		ran = true
		section("Baseline / SA96 vs distance-based intervals")
		res, err := experiments.RunBaseline(100, seed)
		if err != nil {
			return err
		}
		res.Print(w)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want one of all, fig1, fig2, fig4, thm5, fig6, prune, adaptive, refine, drift, classical, robustness, sensitivity, insurance, comparison, baseline)", which)
	}
	return nil
}

// fig6Scales builds the five-point sweep ending at the requested scale,
// mirroring the paper's 100K..500K progression.
func fig6Scales(top int) []int {
	if top < 5 {
		top = 5
	}
	step := top / 5
	return []int{step, 2 * step, 3 * step, 4 * step, 5 * step}
}
