package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/findings.golden.json from the fixture module")

// buildDarlint compiles this package into a scratch binary once per
// test process.
func buildDarlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "darlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building darlint: %v\n%s", err, out)
	}
	return bin
}

// TestJSONGolden pins darlint's -json document byte-for-byte over the
// committed fixture module, which carries one deliberate violation per
// analyzer. Regenerate with `go test ./cmd/darlint -run JSONGolden -update`
// after changing an analyzer message, the output shape, or the fixture.
func TestJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the darlint binary; skipped in -short mode")
	}
	bin := buildDarlint(t)
	fixture, err := filepath.Abs(filepath.Join("testdata", "fixturemod"))
	if err != nil {
		t.Fatal(err)
	}

	outFile := filepath.Join(t.TempDir(), "findings.json")
	cmd := exec.Command(bin, "-json", "-o", outFile, "./...")
	cmd.Dir = fixture
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("darlint -json over fixture: want exit 1 (findings), got %v\nstderr: %s", err, stderr.String())
	}

	got := stdout.Bytes()
	if fileCopy, err := os.ReadFile(outFile); err != nil {
		t.Errorf("-o did not write the document: %v", err)
	} else if !bytes.Equal(fileCopy, got) {
		t.Errorf("-o file differs from stdout")
	}

	// The document must be well-formed and name every analyzer in the
	// suite — the fixture exists to prove each one fires end-to-end
	// through the vet protocol.
	var doc struct {
		Count    int `json:"count"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, got)
	}
	if doc.Count != len(doc.Findings) {
		t.Errorf("count = %d but %d findings listed", doc.Count, len(doc.Findings))
	}
	fired := make(map[string]bool)
	for _, f := range doc.Findings {
		fired[f.Analyzer] = true
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q not relativized", f.File)
		}
	}
	for _, name := range []string{
		"maporder", "nondeterm", "rawgoroutine", "atomicmix",
		"keycoverage", "errwrap", "ctxflow", "lockhold", "wgbalance",
		"retrybound",
	} {
		if !fired[name] {
			t.Errorf("analyzer %s produced no finding over the fixture module", name)
		}
	}

	golden := filepath.Join("testdata", "findings.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d findings)", golden, doc.Count)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-json output differs from %s (regenerate with -update if the change is intended)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestJSONCleanTree checks the zero-findings document: empty array
// (never null), count 0, exit 0.
func TestJSONCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the darlint binary; skipped in -short mode")
	}
	bin := buildDarlint(t)
	dir := t.TempDir()
	writeFiles(t, dir, map[string]string{
		"go.mod":  "module cleanmod\n\ngo 1.22\n",
		"main.go": "package main\n\nfunc main() {}\n",
	})
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("darlint -json over clean module: %v", err)
	}
	want := "{\n  \"count\": 0,\n  \"findings\": []\n}\n"
	if string(out) != want {
		t.Errorf("clean document = %q, want %q", out, want)
	}
}

// TestBudgetModes exercises the audit against a scratch tree: within
// budget, over budget (always fails), under budget (fails only with
// -exact), and a typo'd analyzer name in an allow (always fails).
func TestBudgetModes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the darlint binary; skipped in -short mode")
	}
	bin := buildDarlint(t)
	dir := t.TempDir()
	writeFiles(t, dir, map[string]string{
		"go.mod": "module budgetmod\n\ngo 1.22\n",
		"a.go":   "package a\n\nvar x = 1 //lint:allow maporder demo reason\n",
	})
	budget := func(maporder int) string {
		path := filepath.Join(dir, "budget.json")
		doc := map[string]int{}
		for _, name := range []string{
			"maporder", "nondeterm", "rawgoroutine", "atomicmix",
			"keycoverage", "errwrap", "ctxflow", "lockhold", "wgbalance",
			"retrybound",
		} {
			doc[name] = 0
		}
		doc["maporder"] = maporder
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	run := func(args ...string) int {
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		err := cmd.Run()
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		t.Fatalf("running darlint %v: %v", args, err)
		return -1
	}

	if got := run("-budget", budget(1), "-exact", "."); got != 0 {
		t.Errorf("exact match: exit %d, want 0", got)
	}
	if got := run("-budget", budget(0), "."); got != 1 {
		t.Errorf("over budget: exit %d, want 1", got)
	}
	if got := run("-budget", budget(2), "."); got != 0 {
		t.Errorf("under budget without -exact: exit %d, want 0 (warning only)", got)
	}
	if got := run("-budget", budget(2), "-exact", "."); got != 1 {
		t.Errorf("under budget with -exact: exit %d, want 1", got)
	}

	typo := filepath.Join(dir, "typo.go")
	if err := os.WriteFile(typo, []byte("package a\n\nvar y = 2 //lint:allow maporde typo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run("-budget", budget(1), "-exact", "."); got != 2 {
		t.Errorf("typo'd allow: exit %d, want 2", got)
	}
	if err := os.Remove(typo); err != nil {
		t.Fatal(err)
	}
}

func writeFiles(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// Unit tests for the pure helpers — no subprocess needed.

func TestSplitPosn(t *testing.T) {
	f, err := splitPosn("/repo/internal/core/engine.go:75:2")
	if err != nil {
		t.Fatal(err)
	}
	want := finding{File: "/repo/internal/core/engine.go", Line: 75, Col: 2}
	if f != want {
		t.Errorf("splitPosn = %+v, want %+v", f, want)
	}
	for _, bad := range []string{"", "file.go", "file.go:12", "file.go:x:y"} {
		if _, err := splitPosn(bad); err == nil {
			t.Errorf("splitPosn(%q): expected error", bad)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	if got, err := selectAnalyzers("", ""); err != nil || got != nil {
		t.Errorf("no selection: got %v, %v; want nil, nil", got, err)
	}
	got, err := selectAnalyzers("errwrap,lockhold", "")
	if err != nil || !reflect.DeepEqual(got, []string{"errwrap", "lockhold"}) {
		t.Errorf("-only: got %v, %v", got, err)
	}
	got, err = selectAnalyzers("", "keycoverage")
	if err != nil {
		t.Fatalf("-skip: %v", err)
	}
	if len(got) != 9 {
		t.Errorf("-skip keycoverage: %d analyzers, want 9 (%v)", len(got), got)
	}
	for _, name := range got {
		if name == "keycoverage" {
			t.Errorf("-skip keycoverage still selected: %v", got)
		}
	}
	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Error("-only nosuch: expected error")
	}
	if _, err := selectAnalyzers("errwrap", "lockhold"); err == nil {
		t.Error("-only with -skip: expected error")
	}
}

func TestSortFindingsStable(t *testing.T) {
	fs := []finding{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "z"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z"},
		{File: "a.go", Line: 1, Col: 5, Analyzer: "z"},
		{File: "a.go", Line: 1, Col: 5, Analyzer: "a"},
	}
	sortFindings(fs)
	want := []finding{
		{File: "a.go", Line: 1, Col: 5, Analyzer: "a"},
		{File: "a.go", Line: 1, Col: 5, Analyzer: "z"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z"},
		{File: "b.go", Line: 1, Col: 1, Analyzer: "z"},
	}
	if !reflect.DeepEqual(fs, want) {
		t.Errorf("sortFindings = %+v, want %+v", fs, want)
	}
}
