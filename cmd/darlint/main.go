// Command darlint runs the determinism, concurrency and serving-era
// analyzers of internal/lint over this repository.
//
// It speaks the go vet vettool protocol, so the canonical invocation is
//
//	go vet -vettool=$(which darlint) ./...
//
// (what `make lint` does). Run standalone with package patterns —
//
//	darlint ./...
//
// — it re-execs itself through `go vet -vettool`, which handles package
// loading, export data and caching. Beyond the plain pass-through mode
// it is a findings pipeline:
//
//	darlint -json ./...                     machine-readable findings on
//	                                        stdout, sorted and
//	                                        cwd-relative; exit 1 when
//	                                        any finding survives
//	darlint -json -o findings.json ./...    also write the document to a
//	                                        file (CI artifact)
//	darlint -only errwrap,lockhold ./...    run a subset of the suite
//	darlint -skip keycoverage ./...         run all but the named ones
//	darlint -budget lint_budget.json        audit `//lint:allow` counts
//	                                        against the committed budget
//	                                        (-exact demands equality)
//
// Suppress individual findings with `//lint:allow <analyzer> <reason>`
// comments; every suppression must be covered by lint_budget.json or
// the budget gate fails. See internal/lint for the suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if isVetProtocol(args) {
		unitchecker.Main(lint.Analyzers...) // exits
	}

	fs := flag.NewFlagSet("darlint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a sorted JSON document on stdout; exit 1 if any")
	outFile := fs.String("o", "", "with -json, also write the document to this `file`")
	only := fs.String("only", "", "comma-separated `analyzers` to run (default: all)")
	skip := fs.String("skip", "", "comma-separated `analyzers` to exclude")
	budgetFile := fs.String("budget", "", "audit //lint:allow counts against this budget `file` and exit")
	exact := fs.Bool("exact", false, "with -budget, fail on any mismatch, not just growth")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: darlint [flags] [packages]\n\nanalyzers: %s\n\n",
			strings.Join(lint.AnalyzerNames(), ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	if *budgetFile != "" {
		root := "."
		if rest := fs.Args(); len(rest) > 0 {
			root = rest[0]
		}
		os.Exit(runBudget(*budgetFile, root, *exact))
	}

	selected, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darlint: %v\n", err)
		os.Exit(2)
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "darlint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *jsonOut {
		os.Exit(runJSON(exe, selected, patterns, *outFile))
	}
	os.Exit(runPassthrough(exe, selected, patterns))
}

// isVetProtocol reports whether the arguments are the go vet vettool
// handshake (-V=full, -flags, or an analysis unit *.cfg file) rather
// than a standalone darlint invocation. The go command always leads
// with one of these; darlint's own flags (-json, -only, ...) must not
// be mistaken for it.
func isVetProtocol(args []string) bool {
	if len(args) == 0 {
		return false
	}
	if args[0] == "-V=full" || args[0] == "-flags" {
		return true
	}
	return strings.HasSuffix(args[len(args)-1], ".cfg")
}

// selectAnalyzers validates -only/-skip against the suite and returns
// the per-analyzer enable flags to hand to go vet (nil means the full
// suite, i.e. no explicit enables).
func selectAnalyzers(only, skip string) ([]string, error) {
	if only != "" && skip != "" {
		return nil, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	known := make(map[string]bool)
	for _, name := range lint.AnalyzerNames() {
		known[name] = true
	}
	parse := func(list, flagName string) ([]string, error) {
		var names []string
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				return nil, fmt.Errorf("%s: unknown analyzer %q (suite: %s)",
					flagName, name, strings.Join(lint.AnalyzerNames(), ", "))
			}
			names = append(names, name)
		}
		return names, nil
	}
	if only != "" {
		names, err := parse(only, "-only")
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("-only: no analyzers named")
		}
		return names, nil
	}
	if skip != "" {
		skipped, err := parse(skip, "-skip")
		if err != nil {
			return nil, err
		}
		drop := make(map[string]bool)
		for _, name := range skipped {
			drop[name] = true
		}
		var names []string
		for _, name := range lint.AnalyzerNames() {
			if !drop[name] {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("-skip excludes the whole suite")
		}
		return names, nil
	}
	return nil, nil
}

// vetArgs assembles the go vet argument list: explicit -<analyzer>
// enables narrow the run to exactly that subset (vet semantics: if any
// analyzer flag is set, only those run).
func vetArgs(exe string, selected, patterns []string, jsonMode bool) []string {
	args := []string{"vet", "-vettool=" + exe}
	if jsonMode {
		args = append(args, "-json")
	}
	for _, name := range selected {
		args = append(args, "-"+name)
	}
	return append(args, patterns...)
}

// runPassthrough is the human-facing mode: vet's plain-text diagnostics
// stream straight through, and vet's exit code is ours.
func runPassthrough(exe string, selected, patterns []string) int {
	cmd := exec.Command("go", vetArgs(exe, selected, patterns, false)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "darlint: %v\n", err)
		return 2
	}
	return 0
}
