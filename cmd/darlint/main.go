// Command darlint runs the determinism & concurrency analyzers of
// internal/lint over this repository.
//
// It speaks the go vet vettool protocol, so the canonical invocation is
//
//	go vet -vettool=$(which darlint) ./...
//
// (what `make lint` does). Run standalone with package patterns —
//
//	darlint ./...
//
// — it re-execs itself through `go vet -vettool`, which handles package
// loading, export data and caching. Suppress individual findings with
// `//lint:allow <analyzer>` comments; see internal/lint for the suite.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if isVetProtocol(args) {
		unitchecker.Main(lint.Analyzers...) // exits
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "darlint: cannot locate own binary: %v\n", err)
		os.Exit(1)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "darlint: %v\n", err)
		os.Exit(1)
	}
}

// isVetProtocol reports whether the arguments look like the go vet
// vettool handshake (-V=full, -flags, analyzer flags, or a *.cfg unit
// file) rather than standalone package patterns.
func isVetProtocol(args []string) bool {
	if len(args) == 0 {
		return false
	}
	if strings.HasPrefix(args[0], "-") {
		return true
	}
	return strings.HasSuffix(args[len(args)-1], ".cfg")
}
