package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A finding is one diagnostic, flattened out of go vet's nested
// per-package JSON and pinned to a stable shape for golden tests and
// CI artifacts.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// findingsDoc is the -json output document. Field order here is the
// field order in the output.
type findingsDoc struct {
	Count    int       `json:"count"`
	Findings []finding `json:"findings"`
}

// vetDiagnostic mirrors one entry of go vet -json's per-analyzer
// diagnostic lists: {"posn": "/abs/file.go:12:3", "message": "..."}.
type vetDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// runJSON executes go vet -json over the selected analyzers, parses
// its output into a sorted findings document, writes it to stdout (and
// outFile if set), and returns the exit code: 0 clean, 1 findings,
// 2 vet or build failure.
func runJSON(exe string, selected, patterns []string, outFile string) int {
	// go vet -json writes everything — `# pkg` comment lines and the
	// JSON objects — to stderr, and exits 0 even when there are
	// diagnostics. A non-zero exit therefore means vet itself failed
	// (build error, bad pattern), which we surface raw.
	cmd := exec.Command("go", vetArgs(exe, selected, patterns, true)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(stdout.Bytes())
		os.Stderr.Write(stderr.Bytes())
		fmt.Fprintf(os.Stderr, "darlint: go vet: %v\n", err)
		return 2
	}

	findings, err := parseVetJSON(stderr.Bytes())
	if err != nil {
		os.Stderr.Write(stderr.Bytes())
		fmt.Fprintf(os.Stderr, "darlint: %v\n", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err == nil {
		for i := range findings {
			findings[i].File = relativize(cwd, findings[i].File)
		}
	}
	sortFindings(findings)

	doc := findingsDoc{Count: len(findings), Findings: findings}
	if doc.Findings == nil {
		doc.Findings = []finding{} // pin `"findings": []`, never null
	}
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "darlint: %v\n", err)
		return 2
	}
	out = append(out, '\n')
	os.Stdout.Write(out)
	if outFile != "" {
		if err := os.WriteFile(outFile, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "darlint: %v\n", err)
			return 2
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// parseVetJSON decodes the stream go vet -json emits: `# package`
// comment lines interleaved with pretty-printed JSON objects of shape
// {"pkg": {"analyzer": [diag, ...]}}.
func parseVetJSON(raw []byte) ([]finding, error) {
	var jsonLines []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonLines = append(jsonLines, line)
	}
	dec := json.NewDecoder(strings.NewReader(strings.Join(jsonLines, "\n")))
	var findings []finding
	for dec.More() {
		var unit map[string]map[string][]vetDiagnostic
		if err := dec.Decode(&unit); err != nil {
			return nil, fmt.Errorf("decoding go vet -json output: %w", err)
		}
		for _, byAnalyzer := range unit {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					f, err := splitPosn(d.Posn)
					if err != nil {
						return nil, err
					}
					f.Analyzer = analyzer
					f.Message = d.Message
					findings = append(findings, f)
				}
			}
		}
	}
	// The per-analyzer maps iterate in randomized order; pin the
	// result here so parseVetJSON is deterministic on its own.
	sortFindings(findings)
	return findings, nil
}

// splitPosn parses vet's "file:line:col" position (file may itself
// contain colons on some platforms, so split from the right).
func splitPosn(posn string) (finding, error) {
	var f finding
	ci := strings.LastIndexByte(posn, ':')
	if ci <= 0 {
		return f, fmt.Errorf("malformed position %q", posn)
	}
	li := strings.LastIndexByte(posn[:ci], ':')
	if li <= 0 {
		return f, fmt.Errorf("malformed position %q", posn)
	}
	line, err1 := strconv.Atoi(posn[li+1 : ci])
	col, err2 := strconv.Atoi(posn[ci+1:])
	if err1 != nil || err2 != nil {
		return f, fmt.Errorf("malformed position %q", posn)
	}
	f.File = posn[:li]
	f.Line = line
	f.Col = col
	return f, nil
}

// relativize rewrites an absolute diagnostic path relative to the
// working directory when it lives under it, in forward-slash form, so
// output is stable across checkouts. Paths outside cwd stay absolute.
func relativize(cwd, path string) string {
	rel, err := filepath.Rel(cwd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}

// sortFindings pins the document order: file, then line, col,
// analyzer, message. Deterministic output is the whole point — the
// golden test byte-compares it.
func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
