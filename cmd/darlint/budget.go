package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/lint"
)

// runBudget audits the repo's `//lint:allow` suppressions against the
// committed budget file (analyzer name → allowed count). Growth over
// budget always fails: a new suppression must be paid for with a
// deliberate budget edit in the same change. Shrinking below budget is
// a warning by default — and a failure under -exact, which the
// repo-clean test uses so the committed numbers never go stale.
//
// Exit codes: 0 within budget, 1 over (or, with -exact, any mismatch),
// 2 bad budget file / unscannable tree / unknown analyzer names.
func runBudget(budgetFile, root string, exact bool) int {
	raw, err := os.ReadFile(budgetFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darlint: %v\n", err)
		return 2
	}
	var budget map[string]int
	if err := json.Unmarshal(raw, &budget); err != nil {
		fmt.Fprintf(os.Stderr, "darlint: %s: %v\n", budgetFile, err)
		return 2
	}

	known := make(map[string]bool)
	for _, name := range lint.AnalyzerNames() {
		known[name] = true
	}
	bad := false
	for _, name := range sortedKeys(budget) {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "darlint: %s: unknown analyzer %q\n", budgetFile, name)
			bad = true
		}
	}
	for _, name := range lint.AnalyzerNames() {
		if _, ok := budget[name]; !ok {
			fmt.Fprintf(os.Stderr, "darlint: %s: missing analyzer %q (every analyzer must be pinned, 0 if clean)\n", budgetFile, name)
			bad = true
		}
	}
	if bad {
		return 2
	}

	counts, sites, err := lint.CountAllows(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darlint: %v\n", err)
		return 2
	}
	siteList := func(analyzer string) []string {
		var out []string
		for _, s := range sites {
			if s.Analyzer == analyzer {
				out = append(out, s.Pos)
			}
		}
		return out
	}

	// Directives naming analyzers outside the suite are dead
	// suppressions — almost always typos — and fail the audit.
	for _, name := range sortedKeys(counts) {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "darlint: //lint:allow names unknown analyzer %q at %v\n",
				name, siteList(name))
			bad = true
		}
	}
	if bad {
		return 2
	}

	names := lint.AnalyzerNames()
	sort.Strings(names)
	exit := 0
	for _, name := range names {
		used, allowed := counts[name], budget[name]
		switch {
		case used > allowed:
			fmt.Fprintf(os.Stderr,
				"darlint: %s: %d suppressions, budget %d — new //lint:allow needs a deliberate budget edit; sites: %v\n",
				name, used, allowed, siteList(name))
			exit = 1
		case used < allowed:
			if exact {
				fmt.Fprintf(os.Stderr,
					"darlint: %s: %d suppressions, budget %d — budget is stale, lower it\n",
					name, used, allowed)
				exit = 1
			} else {
				fmt.Fprintf(os.Stderr,
					"darlint: note: %s under budget (%d < %d); consider lowering\n",
					name, used, allowed)
			}
		}
	}
	if exit == 0 {
		fmt.Printf("darlint: suppression budget ok (%d analyzers, %d total allows)\n",
			len(names), total(counts))
	}
	return exit
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
