// Package server is the ctxflow slice of the darlint golden-test
// fixture: its import path sits inside the analyzer's default scope.
package server

import "context"

// Handle detaches from the caller's context — the ctxflow case.
func Handle(run func(context.Context)) {
	run(context.Background())
}
