// Package demo is the darlint golden-test fixture: one deliberate
// violation per analyzer (ctxflow lives in ../server, retrybound in
// ../cluster/fetch). The golden
// findings document pins darlint's -json output byte-for-byte, so any
// edit here must regenerate it (go test ./cmd/darlint -update).
package demo

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDemo is a sentinel for the errwrap case.
var ErrDemo = errors.New("demo")

// QueryOptions is the keycoverage case: Skew is rendered but never
// parsed back, so the canonical key is not invertible over it.
type QueryOptions struct {
	Depth int
	Skew  float64
}

func (q QueryOptions) CanonicalKey() string {
	return fmt.Sprintf("d=%d;s=%g", q.Depth, q.Skew)
}

func ParseCanonicalKey(key string) (QueryOptions, error) {
	var q QueryOptions
	var d int
	if _, err := fmt.Sscanf(key, "d=%d", &d); err != nil {
		return QueryOptions{}, err
	}
	q.Depth = d
	return q, nil
}

// Stamp is the nondeterm case: wall-clock time in a result path.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// PrintAll is the maporder case: output ordered by map iteration.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// IsDemo is the errwrap case: a sentinel compared with ==.
func IsDemo(err error) bool {
	return err == ErrDemo
}

// store mixes atomic and plain access to hits (atomicmix) and holds
// its mutex across disk I/O (lockhold).
type store struct {
	mu   sync.Mutex
	hits int64
	data map[string][]byte
}

func (s *store) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *store) Hits() int64 {
	return s.hits
}

func (s *store) Load(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.data[name]; ok {
		return b, nil
	}
	b, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	s.data[name] = b
	return b, nil
}

// Run is the rawgoroutine and wgbalance case: a bare goroutine whose
// Done is not deferred.
func Run(task func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		task()
		wg.Done()
	}()
	wg.Wait()
}
