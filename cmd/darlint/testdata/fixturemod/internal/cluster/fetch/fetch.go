// Package fetch carries the retrybound fixture case: a worker poll
// loop whose only pacing is an uncancellable sleep.
package fetch

import "time"

// Poll retries forever with no attempt cap and no ctx.Done escape.
func Poll(ping func() error) {
	for {
		if ping() == nil {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}
