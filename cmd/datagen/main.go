// Command datagen emits the synthetic workloads of the experiment
// harness as annotated-header CSV on stdout:
//
//	datagen -workload wbcd -tuples 100000 > wbcd.csv
//	datagen -workload insurance -tuples 5000 > insurance.csv
//	datagen -workload stocks -tuples 2000 > stocks.csv
//	datagen -workload fig2r1 > r1.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/relation"
)

func main() {
	var (
		workload = flag.String("workload", "wbcd", "workload: wbcd, insurance, stocks, fig2r1, fig2r2")
		tuples   = flag.Int("tuples", 10000, "relation size (wbcd, insurance, stocks)")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	rel, err := build(*workload, *tuples, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := relation.WriteCSV(os.Stdout, rel); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func build(workload string, tuples int, seed int64) (*relation.Relation, error) {
	switch workload {
	case "wbcd":
		cfg := datagen.DefaultWBCDConfig()
		cfg.Tuples = tuples
		cfg.Seed = seed
		return datagen.WBCDLike(cfg)
	case "insurance":
		return datagen.Insurance(datagen.InsuranceConfig{N: tuples, Seed: seed})
	case "stocks":
		return datagen.Stocks(datagen.StocksConfig{Days: tuples, Seed: seed})
	case "fig2r1":
		r1, _ := datagen.Figure2Relations()
		return r1, nil
	case "fig2r2":
		_, r2 := datagen.Figure2Relations()
		return r2, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
}
