package main

import (
	"testing"
)

func TestBuildWorkloads(t *testing.T) {
	cases := []struct {
		workload string
		tuples   int
		wantLen  int
		wantW    int
	}{
		{"wbcd", 700, 700, 30},
		{"insurance", 500, 500, 3},
		{"stocks", 365, 365, 3},
		{"fig2r1", 0, 6, 3},
		{"fig2r2", 0, 6, 3},
	}
	for _, c := range cases {
		rel, err := build(c.workload, c.tuples, 1)
		if err != nil {
			t.Errorf("build(%s): %v", c.workload, err)
			continue
		}
		if rel.Len() != c.wantLen || rel.Schema().Width() != c.wantW {
			t.Errorf("%s: %d x %d, want %d x %d", c.workload, rel.Len(), rel.Schema().Width(), c.wantLen, c.wantW)
		}
	}
}

func TestBuildUnknownWorkload(t *testing.T) {
	if _, err := build("nope", 10, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBuildInvalidSize(t *testing.T) {
	if _, err := build("insurance", 1, 1); err == nil {
		t.Error("tiny insurance accepted")
	}
}
