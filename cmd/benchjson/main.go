// Command benchjson is the perf-regression harness: it runs the
// headline Phase I benchmarks (the Figure 6 series and its parallel
// variant) plus the ingest-substrate microbenchmarks, parses the
// standard `go test -bench` output — including custom metrics such as
// tuples/s and ACFs — and writes one machine-readable JSON file.
//
//	go run ./cmd/benchjson -o BENCH_PR5.json          # or: make benchjson
//	go run ./cmd/benchjson -benchtime 3x -o out.json  # steadier numbers
//
// The committed BENCH_PR5.json and the CI perf-smoke artifact both come
// from this command, so regressions show up as a diff in one file
// rather than in scattered log lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// suite is one `go test -bench` invocation: a package and the anchored
// benchmark regexp to run in it.
type suite struct {
	Package string `json:"package"`
	Bench   string `json:"bench"`
}

// suites lists the benchmarks the harness tracks. BenchmarkPhaseI is
// the Figure 6 series (tuples/s must not regress); the cf suite is the
// substrate the Phase I overhaul optimized; the server suite tracks the
// dard query path, cached (steady-state dashboard) and uncached (cold
// Phase II plus rendering) alike.
var suites = []suite{
	{Package: ".", Bench: "^(BenchmarkPhaseI|BenchmarkParallelPhaseI|BenchmarkCFTreeInsert)$"},
	{Package: "./internal/cf", Bench: "^(BenchmarkEncodeNomKey|BenchmarkDecodeNomKey|BenchmarkInternerKey|BenchmarkACFAddRow)$"},
	{Package: "./internal/server", Bench: "^(BenchmarkServerQuery|BenchmarkSingleflight)$"},
}

// benchResult is one parsed benchmark line. Metrics holds every
// "value unit" pair after the iteration count — ns/op, B/op,
// allocs/op and any b.ReportMetric custom units.
type benchResult struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// report is the full JSON document.
type report struct {
	Schema    int           `json:"schema"`
	GoVersion string        `json:"go"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Benchtime string        `json:"benchtime"`
	Suites    []suite       `json:"suites"`
	Results   []benchResult `json:"results"`
}

func main() {
	out := flag.String("o", "BENCH_PR5.json", "output JSON path (\"-\" for stdout)")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = perf smoke; use 3x for steadier numbers)")
	flag.Parse()
	if err := run(*out, *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, benchtime string) error {
	rep := report{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Benchtime: benchtime,
		Suites:    suites,
	}
	for _, s := range suites {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench %s %s\n", s.Bench, s.Package)
		raw, err := runSuite(s, benchtime)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Package, err)
		}
		results, err := parseBench(raw, s.Package)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Package, err)
		}
		if len(results) == 0 {
			return fmt.Errorf("%s: no benchmark lines matched %s", s.Package, s.Bench)
		}
		rep.Results = append(rep.Results, results...)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// runSuite shells out to `go test` and returns its combined output.
// Benchmarks run with -benchmem so allocation regressions on the
// insert path are visible next to the throughput numbers.
func runSuite(s suite, benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", s.Bench, "-benchtime", benchtime, "-benchmem", s.Package)
	b, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go test: %w\n%s", err, b)
	}
	return string(b), nil
}

// parseBench extracts benchmark lines from `go test -bench` output.
// Each line is "BenchmarkName-P  N  v1 u1  v2 u2 ...": the name with a
// -GOMAXPROCS suffix, the iteration count, then value/unit pairs.
func parseBench(out, pkg string) ([]benchResult, error) {
	var results []benchResult
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := splitProcs(strings.TrimPrefix(fields[0], "Benchmark"))
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		r := benchResult{
			Name:       name,
			Package:    pkg,
			Procs:      procs,
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	return results, nil
}

// splitProcs peels the trailing -GOMAXPROCS suffix off a benchmark
// name ("PhaseI/tuples=100000-8" → "PhaseI/tuples=100000", 8).
// Names without the suffix report procs 1.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 1
	}
	return name[:i], p
}
