// Command benchjson is the perf-regression harness: it runs the
// headline Phase I benchmarks (the Figure 6 series, its parallel
// variant and the multi-core scaling series) plus the ingest-substrate
// microbenchmarks, parses the standard `go test -bench` output —
// including custom metrics such as tuples/s and ACFs — and writes one
// machine-readable JSON file with a derived multi-core scaling section.
//
//	go run ./cmd/benchjson -o BENCH_PR9.json          # or: make benchjson
//	go run ./cmd/benchjson -benchtime 3x -o out.json  # steadier numbers
//
// It is also the regression gate: compare mode diffs two report files
// and fails on a >10% throughput regression or a collapse in multi-core
// efficiency — but only when the two reports come from matching
// hardware (same GOOS/GOARCH/CPU count); across different machines the
// numbers aren't commensurable, so violations downgrade to warnings.
//
//	go run ./cmd/benchjson -compare BENCH_PR5.json BENCH_PR9.json   # or: make benchgate
//
// The committed BENCH_PR*.json files and the CI perf-smoke artifact all
// come from this command, so regressions show up as a diff in one file
// rather than in scattered log lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// suite is one `go test -bench` invocation: a package, the anchored
// benchmark regexp to run in it, and an optional -cpu list for
// GOMAXPROCS series.
type suite struct {
	Package string `json:"package"`
	Bench   string `json:"bench"`
	CPU     string `json:"cpu,omitempty"`
}

// suites lists the benchmarks the harness tracks. BenchmarkPhaseI is
// the Figure 6 series (tuples/s must not regress); ScalingPhaseI is the
// same pipeline swept across GOMAXPROCS 1/2/4/8 and feeds the report's
// scaling section; the cf suite is the substrate the Phase I overhaul
// optimized; the server suite tracks the dard query path, cached
// (steady-state dashboard) and uncached (cold Phase II plus rendering)
// alike.
var suites = []suite{
	{Package: ".", Bench: "^(BenchmarkPhaseI|BenchmarkParallelPhaseI|BenchmarkCFTreeInsert)$"},
	{Package: ".", Bench: "^BenchmarkScalingPhaseI$", CPU: "1,2,4,8"},
	{Package: "./internal/cf", Bench: "^(BenchmarkEncodeNomKey|BenchmarkDecodeNomKey|BenchmarkInternerKey|BenchmarkACFAddRow|BenchmarkACFAddRows)$"},
	{Package: "./internal/server", Bench: "^(BenchmarkServerQuery|BenchmarkSingleflight)$"},
}

// benchResult is one parsed benchmark line. Metrics holds every
// "value unit" pair after the iteration count — ns/op, B/op,
// allocs/op and any b.ReportMetric custom units.
type benchResult struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// scalingPoint is one GOMAXPROCS step of the ScalingPhaseI series.
// Speedup is tuples/s relative to the 1-proc run; Efficiency divides
// the speedup by the cores the run could actually use —
// min(procs, machine CPUs) — so a 1-core box sweeping GOMAXPROCS 1..8
// reports efficiency ≈ 1 throughout (pipeline overhead only) instead of
// a meaningless 1/8.
type scalingPoint struct {
	Procs      int     `json:"procs"`
	TuplesPerS float64 `json:"tuples_per_s"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// report is the full JSON document. Schema 2 added the scaling section
// and per-suite -cpu lists; compare mode accepts schema 1 files (they
// simply have no scaling series to gate).
type report struct {
	Schema    int            `json:"schema"`
	GoVersion string         `json:"go"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	CPUs      int            `json:"cpus"`
	Benchtime string         `json:"benchtime"`
	Suites    []suite        `json:"suites"`
	Results   []benchResult  `json:"results"`
	Scaling   []scalingPoint `json:"scaling,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_PR9.json", "output JSON path (\"-\" for stdout)")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = perf smoke; use 3x for steadier numbers)")
	doCompare := flag.Bool("compare", false, "compare two report files (old new) instead of running benchmarks")
	flag.Parse()
	if *doCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, benchtime string) error {
	rep := report{
		Schema:    2,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Benchtime: benchtime,
		Suites:    suites,
	}
	for _, s := range suites {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench %s %s\n", s.Bench, s.Package)
		raw, err := runSuite(s, benchtime)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Package, err)
		}
		results, err := parseBench(raw, s.Package)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Package, err)
		}
		if len(results) == 0 {
			return fmt.Errorf("%s: no benchmark lines matched %s", s.Package, s.Bench)
		}
		rep.Results = append(rep.Results, results...)
	}
	rep.Scaling = scalingSeries(rep.Results, rep.CPUs)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// runSuite shells out to `go test` and returns its combined output.
// Benchmarks run with -benchmem so allocation regressions on the
// insert path are visible next to the throughput numbers.
func runSuite(s suite, benchtime string) (string, error) {
	args := []string{"test", "-run", "^$",
		"-bench", s.Bench, "-benchtime", benchtime, "-benchmem"}
	if s.CPU != "" {
		args = append(args, "-cpu", s.CPU)
	}
	args = append(args, s.Package)
	cmd := exec.Command("go", args...)
	b, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go test: %w\n%s", err, b)
	}
	return string(b), nil
}

// parseBench extracts benchmark lines from `go test -bench` output.
// Each line is "BenchmarkName-P  N  v1 u1  v2 u2 ...": the name with a
// -GOMAXPROCS suffix, the iteration count, then value/unit pairs.
func parseBench(out, pkg string) ([]benchResult, error) {
	var results []benchResult
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := splitProcs(strings.TrimPrefix(fields[0], "Benchmark"))
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		r := benchResult{
			Name:       name,
			Package:    pkg,
			Procs:      procs,
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	return results, nil
}

// splitProcs peels the trailing -GOMAXPROCS suffix off a benchmark
// name ("PhaseI/tuples=100000-8" → "PhaseI/tuples=100000", 8).
// Names without the suffix report procs 1.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 1
	}
	return name[:i], p
}

// scalingSeries derives the scaling section from the ScalingPhaseI
// results: one point per GOMAXPROCS value, sorted, with speedup against
// the 1-proc run and hardware-aware efficiency (speedup per core the
// machine could actually grant the run). Returns nil if the series is
// missing or has no 1-proc baseline.
func scalingSeries(results []benchResult, cpus int) []scalingPoint {
	var pts []scalingPoint
	for _, r := range results {
		if r.Name != "ScalingPhaseI" {
			continue
		}
		tps, ok := r.Metrics["tuples/s"]
		if !ok || tps <= 0 {
			continue
		}
		pts = append(pts, scalingPoint{Procs: r.Procs, TuplesPerS: tps})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Procs < pts[j].Procs })
	var base float64
	for _, p := range pts {
		if p.Procs == 1 {
			base = p.TuplesPerS
			break
		}
	}
	if base <= 0 {
		return nil
	}
	for i := range pts {
		p := &pts[i]
		p.Speedup = p.TuplesPerS / base
		eff := p.Procs
		if cpus >= 1 && eff > cpus {
			eff = cpus
		}
		p.Efficiency = p.Speedup / float64(eff)
	}
	return pts
}

// Gate thresholds: a headline metric may drift 10% run to run before
// the gate trips, and per-core efficiency must retain 80% of the old
// report's value at every comparable GOMAXPROCS step. Benchmarks whose
// total sampled time falls under minSampleNS on either side are
// recorded but not gated: at the perf-smoke's 1x benchtime a
// nanosecond-scale microbenchmark is one cold sample — mostly timer
// overhead and cache state — and gating on it would flap. The headline
// Phase I series runs hundreds of milliseconds per iteration and is
// always gated.
const (
	regressTolerance = 0.10
	efficiencyKeep   = 0.80
	minSampleNS      = 100e6
)

// compareFiles is the CI gate: load two reports and fail on regression
// when the hardware matches, warn when it doesn't.
func compareFiles(oldPath, newPath string) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	violations, compared := compareReports(oldRep, newRep)
	sameHW := oldRep.GOOS == newRep.GOOS && oldRep.GOARCH == newRep.GOARCH && oldRep.CPUs == newRep.CPUs
	for _, v := range violations {
		tag := "REGRESSION"
		if !sameHW {
			tag = "warning (hardware differs)"
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s: %s\n", tag, v)
	}
	if !sameHW {
		fmt.Fprintf(os.Stderr,
			"benchjson: hardware fingerprint differs (%s/%s %d CPUs vs %s/%s %d CPUs); numbers are not commensurable, gate is advisory\n",
			oldRep.GOOS, oldRep.GOARCH, oldRep.CPUs, newRep.GOOS, newRep.GOARCH, newRep.CPUs)
	}
	if len(violations) > 0 && sameHW {
		return fmt.Errorf("%d regression(s) against %s", len(violations), oldPath)
	}
	fmt.Fprintf(os.Stderr, "benchjson: compare OK: %d benchmark(s) within %d%% of %s\n",
		compared, int(regressTolerance*100), oldPath)
	return nil
}

func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema < 1 || len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: not a benchjson report", path)
	}
	return &rep, nil
}

// compareReports diffs new against old benchmark by benchmark, keyed by
// (package, name, procs), and the scaling sections point by point.
// Throughput benchmarks gate on tuples/s (higher is better); the rest
// gate on ns/op (lower is better). Benchmarks present in only one
// report are skipped — suites grow across PRs and old reports stay
// committed. Returns the violation messages and how many benchmarks
// were actually compared.
// sampledNS is the total wall time a result's measurement rests on.
func sampledNS(r benchResult) float64 {
	return float64(r.Iterations) * r.Metrics["ns/op"]
}

func compareReports(oldRep, newRep *report) (violations []string, compared int) {
	oldBy := make(map[string]benchResult, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Package+"|"+r.Name+"|"+strconv.Itoa(r.Procs)] = r
	}
	for _, nr := range newRep.Results {
		or, ok := oldBy[nr.Package+"|"+nr.Name+"|"+strconv.Itoa(nr.Procs)]
		if !ok {
			continue
		}
		if sampledNS(or) < minSampleNS || sampledNS(nr) < minSampleNS {
			continue
		}
		id := fmt.Sprintf("%s %s (procs=%d)", nr.Package, nr.Name, nr.Procs)
		if ov, nv := or.Metrics["tuples/s"], nr.Metrics["tuples/s"]; ov > 0 && nv > 0 {
			compared++
			if nv < ov*(1-regressTolerance) {
				violations = append(violations,
					fmt.Sprintf("%s: tuples/s fell %.1f%% (%.0f → %.0f)", id, (1-nv/ov)*100, ov, nv))
			}
			continue
		}
		if ov, nv := or.Metrics["ns/op"], nr.Metrics["ns/op"]; ov > 0 && nv > 0 {
			compared++
			if nv > ov*(1+regressTolerance) {
				violations = append(violations,
					fmt.Sprintf("%s: ns/op rose %.1f%% (%.0f → %.0f)", id, (nv/ov-1)*100, ov, nv))
			}
		}
	}
	oldScale := make(map[int]scalingPoint, len(oldRep.Scaling))
	for _, p := range oldRep.Scaling {
		oldScale[p.Procs] = p
	}
	for _, np := range newRep.Scaling {
		op, ok := oldScale[np.Procs]
		if !ok || op.Efficiency <= 0 {
			continue
		}
		compared++
		if np.Efficiency < op.Efficiency*efficiencyKeep {
			violations = append(violations,
				fmt.Sprintf("scaling procs=%d: efficiency collapsed %.0f%% → %.0f%%",
					np.Procs, op.Efficiency*100, np.Efficiency*100))
		}
	}
	return violations, compared
}
