package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: unknown
BenchmarkPhaseI/tuples=100000-8         	       3	 650938378 ns/op	      1050 ACFs	    133553 tuples/s	 1000000 B/op	    2000 allocs/op
BenchmarkEncodeNomKey         	30000000	        35.25 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(sampleOutput, ".")
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "PhaseI/tuples=100000" || r.Procs != 8 || r.Iterations != 3 {
		t.Errorf("first result = %+v", r)
	}
	for unit, want := range map[string]float64{
		"ns/op": 650938378, "ACFs": 1050, "tuples/s": 133553, "B/op": 1e6, "allocs/op": 2000,
	} {
		if got := r.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}
	if results[1].Name != "EncodeNomKey" || results[1].Procs != 1 {
		t.Errorf("second result = %+v", results[1])
	}
	if got := results[1].Metrics["ns/op"]; got != 35.25 {
		t.Errorf("fractional ns/op = %v, want 35.25", got)
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"PhaseI/tuples=100000-8", "PhaseI/tuples=100000", 8},
		{"EncodeNomKey", "EncodeNomKey", 1},
		{"ACFAddRow-1", "ACFAddRow", 1},
		{"Odd/name-x", "Odd/name-x", 1},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = %q, %d; want %q, %d", c.in, name, procs, c.name, c.procs)
		}
	}
}

func TestScalingSeries(t *testing.T) {
	results := []benchResult{
		{Name: "ScalingPhaseI", Procs: 1, Metrics: map[string]float64{"tuples/s": 100_000}},
		{Name: "ScalingPhaseI", Procs: 4, Metrics: map[string]float64{"tuples/s": 300_000}},
		{Name: "ScalingPhaseI", Procs: 8, Metrics: map[string]float64{"tuples/s": 320_000}},
		{Name: "PhaseI/tuples=100000", Procs: 8, Metrics: map[string]float64{"tuples/s": 999}},
	}
	pts := scalingSeries(results, 4)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[0].Procs != 1 || pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Errorf("baseline point = %+v", pts[0])
	}
	if pts[1].Procs != 4 || pts[1].Speedup != 3 || pts[1].Efficiency != 0.75 {
		t.Errorf("4-proc point = %+v", pts[1])
	}
	// 8 procs on a 4-CPU box: efficiency divides by the 4 cores the run
	// could actually use, not the 8 it asked for.
	if pts[2].Procs != 8 || pts[2].Efficiency != 3.2/4 {
		t.Errorf("8-proc point = %+v", pts[2])
	}
	if got := scalingSeries(results[1:], 4); got != nil {
		t.Errorf("series without a 1-proc baseline should be nil, got %v", got)
	}
}

func mkReport(tps, nsop, eff4 float64) *report {
	rep := &report{
		Schema: 2, GOOS: "linux", GOARCH: "amd64", CPUs: 4,
		Results: []benchResult{
			{Name: "PhaseI/tuples=100000", Package: ".", Procs: 1, Iterations: 1,
				Metrics: map[string]float64{"tuples/s": tps, "ns/op": 1e9}},
			{Name: "EncodeNomKey", Package: "./internal/cf", Procs: 1, Iterations: 10_000_000,
				Metrics: map[string]float64{"ns/op": nsop}},
		},
		Scaling: []scalingPoint{
			{Procs: 1, TuplesPerS: tps, Speedup: 1, Efficiency: 1},
			{Procs: 4, TuplesPerS: tps * 4 * eff4, Speedup: 4 * eff4, Efficiency: eff4},
		},
	}
	return rep
}

func TestCompareReports(t *testing.T) {
	old := mkReport(100_000, 35, 0.9)

	if v, n := compareReports(old, mkReport(100_000, 35, 0.9)); len(v) != 0 || n == 0 {
		t.Errorf("identical reports: violations %v, compared %d", v, n)
	}
	// Inside the 10% band: no violation either way.
	if v, _ := compareReports(old, mkReport(95_000, 37, 0.88)); len(v) != 0 {
		t.Errorf("within-tolerance drift flagged: %v", v)
	}
	// tuples/s regression beyond 10%.
	if v, _ := compareReports(old, mkReport(80_000, 35, 0.9)); len(v) != 1 {
		t.Errorf("want 1 throughput violation, got %v", v)
	}
	// ns/op regression on a benchmark without tuples/s.
	if v, _ := compareReports(old, mkReport(100_000, 50, 0.9)); len(v) != 1 {
		t.Errorf("want 1 ns/op violation, got %v", v)
	}
	// Efficiency collapse at 4 procs.
	if v, _ := compareReports(old, mkReport(100_000, 35, 0.4)); len(v) != 1 {
		t.Errorf("want 1 efficiency violation, got %v", v)
	}
	// Old report without scaling (schema 1): no scaling gate, no panic.
	legacy := mkReport(100_000, 35, 0.9)
	legacy.Schema, legacy.Scaling = 1, nil
	if v, _ := compareReports(legacy, mkReport(100_000, 35, 0.1)); len(v) != 0 {
		t.Errorf("legacy old report produced scaling violations: %v", v)
	}
	// Benchmarks only in one report are skipped, not failed.
	extra := mkReport(100_000, 35, 0.9)
	extra.Results = append(extra.Results, benchResult{
		Name: "ACFAddRows", Package: "./internal/cf", Procs: 1,
		Metrics: map[string]float64{"ns/op": 1}})
	if v, _ := compareReports(old, extra); len(v) != 0 {
		t.Errorf("new-only benchmark flagged: %v", v)
	}
	// A result resting on too little sampled time is not gated even if
	// the ratio is terrible: one cold 1x sample of a microsecond-scale
	// benchmark is noise, not a regression.
	micro := mkReport(100_000, 35, 0.9)
	micro.Results[1].Iterations = 1
	micro.Results[1].Metrics["ns/op"] = 35
	microBad := mkReport(100_000, 35, 0.9)
	microBad.Results[1].Iterations = 1
	microBad.Results[1].Metrics["ns/op"] = 9000
	if v, _ := compareReports(micro, microBad); len(v) != 0 {
		t.Errorf("under-sampled micro result gated: %v", v)
	}
}
