package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: unknown
BenchmarkPhaseI/tuples=100000-8         	       3	 650938378 ns/op	      1050 ACFs	    133553 tuples/s	 1000000 B/op	    2000 allocs/op
BenchmarkEncodeNomKey         	30000000	        35.25 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(sampleOutput, ".")
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "PhaseI/tuples=100000" || r.Procs != 8 || r.Iterations != 3 {
		t.Errorf("first result = %+v", r)
	}
	for unit, want := range map[string]float64{
		"ns/op": 650938378, "ACFs": 1050, "tuples/s": 133553, "B/op": 1e6, "allocs/op": 2000,
	} {
		if got := r.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}
	if results[1].Name != "EncodeNomKey" || results[1].Procs != 1 {
		t.Errorf("second result = %+v", results[1])
	}
	if got := results[1].Metrics["ns/op"]; got != 35.25 {
		t.Errorf("fractional ns/op = %v, want 35.25", got)
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"PhaseI/tuples=100000-8", "PhaseI/tuples=100000", 8},
		{"EncodeNomKey", "EncodeNomKey", 1},
		{"ACFAddRow-1", "ACFAddRow", 1},
		{"Odd/name-x", "Odd/name-x", 1},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = %q, %d; want %q, %d", c.in, name, procs, c.name, c.procs)
		}
	}
}
