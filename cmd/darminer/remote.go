// Remote query mode: `darminer query -addr http://host:8344 name` asks
// a running dard server (cmd/dard) for the rules of a catalog summary
// instead of decoding a local .acfsum file. The server renders exactly
// the bytes the local path would, so -json output is interchangeable
// between the two modes.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/core"
)

// remoteQueryBody mirrors the server's query request document.
type remoteQueryBody struct {
	Metric            string    `json:"metric"`
	FrequencyFraction float64   `json:"frequencyFraction"`
	DegreeFactor      float64   `json:"degreeFactor"`
	Measures          bool      `json:"measures,omitempty"`
	AntecedentGroups  []string  `json:"antecedentGroups,omitempty"`
	ConsequentGroups  []string  `json:"consequentGroups,omitempty"`
	SweepFactors      []float64 `json:"sweepFactors,omitempty"`
	TopK              int       `json:"topK,omitempty"`
	Workers           int       `json:"workers,omitempty"`
}

// remoteBody resolves the flag values into the request document. The
// same local options builder does the parsing, so the remote path
// rejects exactly what the local one does and ships the same
// normalized filters.
func remoteBody(cfg queryConfig) ([]byte, error) {
	q, err := cfg.options()
	if err != nil {
		return nil, err
	}
	return json.Marshal(remoteQueryBody{
		Metric:            cfg.metric,
		FrequencyFraction: cfg.minsup,
		DegreeFactor:      cfg.degree,
		Measures:          q.Measures,
		AntecedentGroups:  q.AntecedentGroups,
		ConsequentGroups:  q.ConsequentGroups,
		SweepFactors:      q.SweepFactors,
		TopK:              q.TopK,
		Workers:           q.Workers,
	})
}

// postJSON POSTs a query-options body and returns the response payload,
// turning non-200 answers into errors carrying the server's message.
func postJSON(u *url.URL, body []byte) ([]byte, *http.Response, error) {
	resp, err := http.Post(u.String(), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			return nil, nil, fmt.Errorf("server: %s (status %d)", e.Error, resp.StatusCode)
		}
		return nil, nil, fmt.Errorf("server: status %d: %s", resp.StatusCode, strings.TrimSpace(string(payload)))
	}
	return payload, resp, nil
}

// parseBase validates the -addr flag.
func parseBase(addr string) (*url.URL, error) {
	base, err := url.Parse(addr)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("-addr %q is not a base URL like http://host:8344", addr)
	}
	return base, nil
}

// runRemoteQuery POSTs the query to addr's catalog and prints the
// result: verbatim JSON with -json (byte-identical to the local path,
// wall-clock lines aside), a rule listing otherwise.
func runRemoteQuery(w io.Writer, addr, name string, cfg queryConfig) error {
	base, err := parseBase(addr)
	if err != nil {
		return err
	}
	body, err := remoteBody(cfg)
	if err != nil {
		return err
	}
	u := base.JoinPath("/v1/summaries/" + url.PathEscape(name) + "/query")
	payload, resp, err := postJSON(u, body)
	if err != nil {
		return err
	}

	if cfg.asJSON {
		_, err := w.Write(payload)
		return err
	}
	var doc core.ExportedResult
	if err := json.Unmarshal(payload, &doc); err != nil {
		return fmt.Errorf("parsing server response: %w", err)
	}
	fmt.Fprintf(w, "summary %q on %s: %d tuples (version %s, cache %s)\n",
		name, base.Host, doc.Tuples,
		resp.Header.Get("X-Dard-Summary-Version"), resp.Header.Get("X-Dard-Cache"))
	fmt.Fprintf(w, "phase II: %d cliques, %d rules\n", doc.PhaseII.Cliques, len(doc.Rules))
	for _, p := range doc.Sweep {
		fmt.Fprintf(w, "sweep degree<=%g: %d rules\n", p.Factor, p.Rules)
	}
	for i, r := range doc.Rules {
		if cfg.top > 0 && i == cfg.top {
			fmt.Fprintf(w, "... %d more rules\n", len(doc.Rules)-cfg.top)
			break
		}
		fmt.Fprintln(w, r.Description+formatMeasures(r.Measures))
	}
	return nil
}

// runRemoteDiff POSTs a diff of two catalog summaries and prints it:
// verbatim JSON with -json (byte-identical to the local two-file path
// over the same data), the printDiff listing otherwise.
func runRemoteDiff(w io.Writer, addr, oldName, newName string, cfg queryConfig) error {
	base, err := parseBase(addr)
	if err != nil {
		return err
	}
	body, err := remoteBody(cfg)
	if err != nil {
		return err
	}
	u := base.JoinPath("/v1/summaries/" + url.PathEscape(oldName) + "/diff/" + url.PathEscape(newName))
	payload, _, err := postJSON(u, body)
	if err != nil {
		return err
	}
	if cfg.asJSON {
		_, err := w.Write(payload)
		return err
	}
	var d core.RuleDiff
	if err := json.Unmarshal(payload, &d); err != nil {
		return fmt.Errorf("parsing server response: %w", err)
	}
	printDiff(w, oldName, newName, d)
	return nil
}
