// Remote query mode: `darminer query -addr http://host:8344 name` asks
// a running dard server (cmd/dard) for the rules of a catalog summary
// instead of decoding a local .acfsum file. The server renders exactly
// the bytes the local path would, so -json output is interchangeable
// between the two modes.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/core"
)

// remoteQueryBody mirrors the server's query request document.
type remoteQueryBody struct {
	Metric            string  `json:"metric"`
	FrequencyFraction float64 `json:"frequencyFraction"`
	DegreeFactor      float64 `json:"degreeFactor"`
	Workers           int     `json:"workers,omitempty"`
}

// runRemoteQuery POSTs the query to addr's catalog and prints the
// result: verbatim JSON with -json (byte-identical to the local path,
// wall-clock lines aside), a rule listing otherwise.
func runRemoteQuery(w io.Writer, addr, name string, cfg queryConfig) error {
	base, err := url.Parse(addr)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return fmt.Errorf("-addr %q is not a base URL like http://host:8344", addr)
	}
	body, err := json.Marshal(remoteQueryBody{
		Metric:            cfg.metric,
		FrequencyFraction: cfg.minsup,
		DegreeFactor:      cfg.degree,
		Workers:           cfg.workers,
	})
	if err != nil {
		return err
	}
	u := base.JoinPath("/v1/summaries/" + url.PathEscape(name) + "/query")
	resp, err := http.Post(u.String(), "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (status %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: status %d: %s", resp.StatusCode, strings.TrimSpace(string(payload)))
	}

	if cfg.asJSON {
		_, err := w.Write(payload)
		return err
	}
	var doc core.ExportedResult
	if err := json.Unmarshal(payload, &doc); err != nil {
		return fmt.Errorf("parsing server response: %w", err)
	}
	fmt.Fprintf(w, "summary %q on %s: %d tuples (version %s, cache %s)\n",
		name, base.Host, doc.Tuples,
		resp.Header.Get("X-Dard-Summary-Version"), resp.Header.Get("X-Dard-Cache"))
	fmt.Fprintf(w, "phase II: %d cliques, %d rules\n", doc.PhaseII.Cliques, len(doc.Rules))
	for i, r := range doc.Rules {
		if cfg.top > 0 && i == cfg.top {
			fmt.Fprintf(w, "... %d more rules\n", len(doc.Rules)-cfg.top)
			break
		}
		fmt.Fprintln(w, r.Description)
	}
	return nil
}
