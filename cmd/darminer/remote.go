// Remote query mode: `darminer query -addr http://host:8344 name` asks
// a running dard server (cmd/dard) for the rules of a catalog summary
// instead of decoding a local .acfsum file. The server renders exactly
// the bytes the local path would, so -json output is interchangeable
// between the two modes. The HTTP plumbing lives in pkg/client — the
// same typed client the darc cluster coordinator dispatches shards
// through.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"

	"repro/internal/core"
	"repro/pkg/client"
)

// remoteQueryBody mirrors the server's query request document.
type remoteQueryBody struct {
	Metric            string    `json:"metric"`
	FrequencyFraction float64   `json:"frequencyFraction"`
	DegreeFactor      float64   `json:"degreeFactor"`
	Measures          bool      `json:"measures,omitempty"`
	AntecedentGroups  []string  `json:"antecedentGroups,omitempty"`
	ConsequentGroups  []string  `json:"consequentGroups,omitempty"`
	SweepFactors      []float64 `json:"sweepFactors,omitempty"`
	TopK              int       `json:"topK,omitempty"`
	Workers           int       `json:"workers,omitempty"`
}

// remoteBody resolves the flag values into the request document. The
// same local options builder does the parsing, so the remote path
// rejects exactly what the local one does and ships the same
// normalized filters.
func remoteBody(cfg queryConfig) ([]byte, error) {
	q, err := cfg.options()
	if err != nil {
		return nil, err
	}
	return json.Marshal(remoteQueryBody{
		Metric:            cfg.metric,
		FrequencyFraction: cfg.minsup,
		DegreeFactor:      cfg.degree,
		Measures:          q.Measures,
		AntecedentGroups:  q.AntecedentGroups,
		ConsequentGroups:  q.ConsequentGroups,
		SweepFactors:      q.SweepFactors,
		TopK:              q.TopK,
		Workers:           q.Workers,
	})
}

// newRemoteClient validates the -addr flag into a typed client.
func newRemoteClient(addr string) (*client.Client, error) {
	c, err := client.New(addr)
	if err != nil {
		return nil, fmt.Errorf("-addr %q is not a base URL like http://host:8344", addr)
	}
	return c, nil
}

// runRemoteQuery POSTs the query to addr's catalog and prints the
// result: verbatim JSON with -json (byte-identical to the local path,
// wall-clock lines aside), a rule listing otherwise.
func runRemoteQuery(w io.Writer, addr, name string, cfg queryConfig) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	body, err := remoteBody(cfg)
	if err != nil {
		return err
	}
	payload, meta, err := c.QueryJSON(context.Background(), name, body)
	if err != nil {
		return err
	}

	if cfg.asJSON {
		_, err := w.Write(payload)
		return err
	}
	var doc core.ExportedResult
	if err := json.Unmarshal(payload, &doc); err != nil {
		return fmt.Errorf("parsing server response: %w", err)
	}
	base, _ := url.Parse(c.Base())
	fmt.Fprintf(w, "summary %q on %s: %d tuples (version %s, cache %s)\n",
		name, base.Host, doc.Tuples, meta.Version, meta.Cache)
	fmt.Fprintf(w, "phase II: %d cliques, %d rules\n", doc.PhaseII.Cliques, len(doc.Rules))
	for _, p := range doc.Sweep {
		fmt.Fprintf(w, "sweep degree<=%g: %d rules\n", p.Factor, p.Rules)
	}
	for i, r := range doc.Rules {
		if cfg.top > 0 && i == cfg.top {
			fmt.Fprintf(w, "... %d more rules\n", len(doc.Rules)-cfg.top)
			break
		}
		fmt.Fprintln(w, r.Description+formatMeasures(r.Measures))
	}
	return nil
}

// runRemoteDiff POSTs a diff of two catalog summaries and prints it:
// verbatim JSON with -json (byte-identical to the local two-file path
// over the same data), the printDiff listing otherwise.
func runRemoteDiff(w io.Writer, addr, oldName, newName string, cfg queryConfig) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	body, err := remoteBody(cfg)
	if err != nil {
		return err
	}
	payload, err := c.DiffJSON(context.Background(), oldName, newName, body)
	if err != nil {
		return err
	}
	if cfg.asJSON {
		_, err := w.Write(payload)
		return err
	}
	var d core.RuleDiff
	if err := json.Unmarshal(payload, &d); err != nil {
		return fmt.Errorf("parsing server response: %w", err)
	}
	printDiff(w, oldName, newName, d)
	return nil
}

// runClusterIngest ships a CSV to a darc coordinator, which shards it
// across the worker pool and installs the merged summary under name.
func runClusterIngest(w io.Writer, addr, name, path string, cfg ingestConfig) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	csv, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := c.ClusterIngest(context.Background(), name, csv, client.IngestOptions{
		D0: cfg.d0, Memory: cfg.memory, Workers: cfg.workers, Groups: cfg.groups,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cluster-ingested %d tuples into %d groups (%d clusters) as %q version %d (%d bytes)\n",
		res.Tuples, res.Groups, res.Clusters, res.Name, res.Version, res.Bytes)
	return nil
}
