// The ingest, query and merge subcommands expose the Ingest → Summary →
// Query pipeline on the command line. `ingest` runs Phase I once and
// writes a .acfsum summary file; `query` answers rule queries from a
// summary without touching the data; `merge` combines summaries of
// disjoint shards. Together they replace one monolithic `darminer
// data.csv` run with a persistable intermediate:
//
//	darminer ingest -d0 5 -o data.acfsum data.csv
//	darminer query -minsup 0.2 data.acfsum
//	darminer merge -o all.acfsum shard1.acfsum shard2.acfsum
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	dar "repro"
	"repro/internal/distance"
)

// ingestConfig carries the `ingest` flag values.
type ingestConfig struct {
	d0         float64
	memory     int
	workers    int
	groups     string
	out        string
	cpuprofile string
	memprofile string
}

// queryConfig carries the `query` flag values.
type queryConfig struct {
	minsup  float64
	degree  float64
	metric  string
	top     int
	workers int
	asJSON  bool
	// addr, when set, queries a running dard server instead of a local
	// file; the positional argument is then a catalog summary name.
	addr string
}

// ingestMain parses `darminer ingest` flags and runs the subcommand.
func ingestMain(args []string) int {
	fs := flag.NewFlagSet("darminer ingest", flag.ExitOnError)
	var cfg ingestConfig
	fs.Float64Var(&cfg.d0, "d0", 0, "diameter threshold d0 in data units (0 = derive per attribute from the data)")
	fs.IntVar(&cfg.memory, "memory", 0, "Phase I memory budget in bytes (0 = unlimited)")
	fs.IntVar(&cfg.workers, "workers", 1, "worker goroutines for the ingest scan (output is identical at any count)")
	fs.StringVar(&cfg.groups, "groups", "", "attribute grouping, e.g. \"lat+lon,price\" (default: one group per attribute)")
	fs.StringVar(&cfg.out, "o", "", "output summary path (default: input with .acfsum extension)")
	fs.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the ingest to this file")
	fs.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile taken after the ingest to this file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: darminer ingest [flags] data.csv")
		fs.PrintDefaults()
		return 2
	}
	stop, err := startProfiles(cfg.cpuprofile, cfg.memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darminer ingest:", err)
		return 1
	}
	err = runIngest(os.Stdout, fs.Arg(0), cfg)
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "darminer ingest:", err)
		return 1
	}
	return 0
}

// queryMain parses `darminer query` flags and runs the subcommand.
func queryMain(args []string) int {
	fs := flag.NewFlagSet("darminer query", flag.ExitOnError)
	var cfg queryConfig
	fs.Float64Var(&cfg.minsup, "minsup", 0.03, "frequency threshold s0 as a fraction of the ingested relation")
	fs.Float64Var(&cfg.degree, "degree", 1, "degree-of-association factor (rules must satisfy degree <= factor)")
	fs.StringVar(&cfg.metric, "metric", "D2", "cluster metric: D0, D1 or D2")
	fs.IntVar(&cfg.top, "top", 50, "print at most this many rules (0 = all)")
	fs.IntVar(&cfg.workers, "workers", 1, "worker goroutines for the query (output is identical at any count)")
	fs.BoolVar(&cfg.asJSON, "json", false, "emit the full result as JSON")
	fs.StringVar(&cfg.addr, "addr", "", "base URL of a running dard server (e.g. http://localhost:8344); the argument is then a catalog summary name, not a file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: darminer query [flags] data.acfsum")
		fmt.Fprintln(os.Stderr, "       darminer query [flags] -addr http://host:8344 summary-name")
		fs.PrintDefaults()
		return 2
	}
	var err error
	if cfg.addr != "" {
		err = runRemoteQuery(os.Stdout, cfg.addr, fs.Arg(0), cfg)
	} else {
		err = runQuery(os.Stdout, fs.Arg(0), cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "darminer query:", err)
		return 1
	}
	return 0
}

// mergeMain parses `darminer merge` flags and runs the subcommand.
func mergeMain(args []string) int {
	fs := flag.NewFlagSet("darminer merge", flag.ExitOnError)
	out := fs.String("o", "", "output summary path (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: darminer merge -o merged.acfsum shard1.acfsum shard2.acfsum ...")
		fs.PrintDefaults()
		return 2
	}
	if err := runMerge(os.Stdout, *out, fs.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "darminer merge:", err)
		return 1
	}
	return 0
}

// runIngest reads the CSV, runs the shared Phase I, and writes the
// encoded summary. Ingest-time parameters (thresholds, memory, grouping)
// are fixed here and recorded in the summary; query-time parameters
// (frequency, degree, metric) belong to `darminer query`.
func runIngest(w io.Writer, path string, cfg ingestConfig) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := dar.ReadCSV(f)
	if err != nil {
		return err
	}
	part, err := parseGroups(rel.Schema(), cfg.groups)
	if err != nil {
		return err
	}
	opt := dar.DefaultOptions()
	opt.DiameterThreshold = cfg.d0
	opt.MemoryLimit = cfg.memory
	opt.Workers = cfg.workers
	if cfg.d0 == 0 {
		suggested, err := dar.SuggestThresholds(rel, part, dar.AdvisorOptions{})
		if err != nil {
			return err
		}
		opt.DiameterThresholds = suggested
		fmt.Fprintf(w, "derived d0 per attribute: %v\n", suggested)
	}
	s, err := dar.Ingest(rel, part, opt)
	if err != nil {
		return err
	}
	data, err := dar.EncodeSummary(s)
	if err != nil {
		return err
	}
	out := cfg.out
	if out == "" {
		out = path + ".acfsum"
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	clusters := 0
	for _, g := range s.Groups {
		clusters += len(g.Clusters)
	}
	fmt.Fprintf(w, "ingested %d tuples into %d groups (%d clusters), wrote %d bytes to %s\n",
		s.Tuples, len(s.Groups), clusters, len(data), out)
	return nil
}

// runQuery decodes a summary and answers a rule query from it alone.
// Cluster descriptions come from the summary's recorded schema; with no
// relation available, bounding boxes are the centroid ± 2·radius
// estimate and rule supports are not counted — exactly the output of
// `darminer -nopostscan` over the original data.
func runQuery(w io.Writer, path string, cfg queryConfig) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := dar.DecodeSummary(data)
	if err != nil {
		return err
	}
	m, ok := distance.ParseClusterMetric(cfg.metric)
	if !ok {
		return fmt.Errorf("unknown metric %q", cfg.metric)
	}
	q := dar.DefaultQueryOptions()
	q.Metric = m
	q.FrequencyFraction = cfg.minsup
	q.DegreeFactor = cfg.degree
	q.Workers = cfg.workers
	res, err := dar.Query(s, q)
	if err != nil {
		return err
	}
	schema, err := s.Schema()
	if err != nil {
		return err
	}
	part, err := s.Partitioning(schema)
	if err != nil {
		return err
	}
	// Describe only reads the schema, so an empty relation over it serves
	// as the value formatter.
	rel := dar.NewRelation(schema)
	if cfg.asJSON {
		return dar.WriteJSON(w, res, rel, part)
	}
	fmt.Fprintf(w, "summary: %d tuples, %d groups, %d shard(s)\n", s.Tuples, len(s.Groups), s.Shards)
	fmt.Fprintf(w, "phase II: %v, %d cliques, %d rules\n", res.PhaseII.Duration, res.PhaseII.Cliques, len(res.Rules))
	for i, r := range res.Rules {
		if cfg.top > 0 && i == cfg.top {
			fmt.Fprintf(w, "... %d more rules\n", len(res.Rules)-cfg.top)
			break
		}
		fmt.Fprintln(w, res.DescribeRule(r, rel, part))
	}
	return nil
}

// runMerge folds the shard summaries left to right and writes the
// combined summary.
func runMerge(w io.Writer, out string, inputs []string) error {
	var merged *dar.Summary
	for _, path := range inputs {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		s, err := dar.DecodeSummary(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if merged == nil {
			merged = s
			continue
		}
		merged, err = dar.MergeSummaries(merged, s)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	data, err := dar.EncodeSummary(merged)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "merged %d summaries (%d tuples, %d shards), wrote %d bytes to %s\n",
		len(inputs), merged.Tuples, merged.Shards, len(data), out)
	return nil
}
