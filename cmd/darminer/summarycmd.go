// The ingest, query, merge and diff subcommands expose the Ingest →
// Summary → Query pipeline on the command line. `ingest` runs Phase I
// once and writes a .acfsum summary file; `query` answers rule queries
// from a summary without touching the data — with measure annotation
// (-measures), group filters (-ante, -into), degree sweeps (-sweep)
// and server-side top-k (-topk); `merge` combines summaries of
// disjoint shards; `diff` (diffcmd.go) reports rule drift between two
// summaries. Together they replace one monolithic `darminer data.csv`
// run with a persistable intermediate:
//
//	darminer ingest -d0 5 -o data.acfsum data.csv
//	darminer query -minsup 0.2 -measures -topk 10 data.acfsum
//	darminer merge -o all.acfsum shard1.acfsum shard2.acfsum
//	darminer diff -minsup 0.2 old.acfsum new.acfsum
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	dar "repro"
	"repro/internal/distance"
)

// ingestConfig carries the `ingest` flag values.
type ingestConfig struct {
	d0         float64
	memory     int
	workers    int
	groups     string
	out        string
	cpuprofile string
	memprofile string
	// cluster, when set, ships the CSV to a darc coordinator instead of
	// ingesting locally; name is then the catalog name to install under.
	cluster string
	name    string
}

// queryConfig carries the `query` (and `diff`) flag values.
type queryConfig struct {
	minsup  float64
	degree  float64
	metric  string
	top     int
	workers int
	asJSON  bool
	// Query modes: measure annotation, server-side top-k (distinct from
	// -top, which only limits printing), group filters and a
	// degree-factor sweep — all applied inside the engine, identically
	// on the local and remote paths.
	measures bool
	topk     int
	ante     string
	into     string
	sweep    string
	// addr, when set, queries a running dard server instead of a local
	// file; the positional argument is then a catalog summary name.
	addr string
}

// modeFlags registers the query-mode flags shared by `query` and `diff`.
func (cfg *queryConfig) modeFlags(fs *flag.FlagSet) {
	fs.Float64Var(&cfg.minsup, "minsup", 0.03, "frequency threshold s0 as a fraction of the ingested relation")
	fs.Float64Var(&cfg.degree, "degree", 1, "degree-of-association factor (rules must satisfy degree <= factor)")
	fs.StringVar(&cfg.metric, "metric", "D2", "cluster metric: D0, D1 or D2")
	fs.IntVar(&cfg.workers, "workers", 1, "worker goroutines (output is identical at any count)")
	fs.BoolVar(&cfg.measures, "measures", false, "annotate every rule with interestingness measures (support bound, confidence, lift, conviction)")
	fs.IntVar(&cfg.topk, "topk", 0, "keep only the K strongest rules, after filters (0 = all); ties cannot arise — the rule order is total")
	fs.StringVar(&cfg.ante, "ante", "", "comma-separated attribute groups the antecedent must cover, e.g. \"Age,Salary\"")
	fs.StringVar(&cfg.into, "into", "", "comma-separated attribute groups the consequent must lie on (target filter)")
	fs.StringVar(&cfg.sweep, "sweep", "", "comma-separated degree factors to sweep, each in (0, degree], e.g. \"0.25,0.5,1\"")
	fs.BoolVar(&cfg.asJSON, "json", false, "emit the full result as JSON")
}

// options resolves the flag values into validated query options —
// one builder for the local and remote paths of both subcommands.
func (cfg queryConfig) options() (dar.QueryOptions, error) {
	m, ok := distance.ParseClusterMetric(cfg.metric)
	if !ok {
		return dar.QueryOptions{}, fmt.Errorf("unknown metric %q", cfg.metric)
	}
	q := dar.DefaultQueryOptions()
	q.Metric = m
	q.FrequencyFraction = cfg.minsup
	q.DegreeFactor = cfg.degree
	q.Workers = cfg.workers
	q.Measures = cfg.measures
	q.TopK = cfg.topk
	q.AntecedentGroups = splitList(cfg.ante)
	q.ConsequentGroups = splitList(cfg.into)
	dar.NormalizeGroupFilters(&q)
	for _, tok := range splitList(cfg.sweep) {
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return dar.QueryOptions{}, fmt.Errorf("bad -sweep entry %q: %v", tok, err)
		}
		q.SweepFactors = append(q.SweepFactors, f)
	}
	sort.Float64s(q.SweepFactors)
	if err := q.Validate(); err != nil {
		return dar.QueryOptions{}, err
	}
	return q, nil
}

// splitList splits a comma-separated flag value, trimming blanks away
// so "a, b," means two entries.
func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// ingestMain parses `darminer ingest` flags and runs the subcommand.
func ingestMain(args []string) int {
	fs := flag.NewFlagSet("darminer ingest", flag.ExitOnError)
	var cfg ingestConfig
	fs.Float64Var(&cfg.d0, "d0", 0, "diameter threshold d0 in data units (0 = derive per attribute from the data)")
	fs.IntVar(&cfg.memory, "memory", 0, "Phase I memory budget in bytes (0 = unlimited)")
	fs.IntVar(&cfg.workers, "workers", 1, "worker goroutines for the ingest scan (output is identical at any count)")
	fs.StringVar(&cfg.groups, "groups", "", "attribute grouping, e.g. \"lat+lon,price\" (default: one group per attribute)")
	fs.StringVar(&cfg.out, "o", "", "output summary path (default: input with .acfsum extension)")
	fs.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the ingest to this file")
	fs.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile taken after the ingest to this file")
	fs.StringVar(&cfg.cluster, "cluster", "", "base URL of a darc coordinator (e.g. http://localhost:8345); the ingest is sharded across its workers and installed under -name")
	fs.StringVar(&cfg.name, "name", "", "catalog name to install under on the coordinator (required with -cluster)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: darminer ingest [flags] data.csv")
		fmt.Fprintln(os.Stderr, "       darminer ingest [flags] -cluster http://host:8345 -name summary-name data.csv")
		fs.PrintDefaults()
		return 2
	}
	if cfg.cluster != "" {
		if cfg.name == "" {
			fmt.Fprintln(os.Stderr, "darminer ingest: -cluster needs -name")
			return 2
		}
		if err := runClusterIngest(os.Stdout, cfg.cluster, cfg.name, fs.Arg(0), cfg); err != nil {
			fmt.Fprintln(os.Stderr, "darminer ingest:", err)
			return 1
		}
		return 0
	}
	stop, err := startProfiles(cfg.cpuprofile, cfg.memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darminer ingest:", err)
		return 1
	}
	err = runIngest(os.Stdout, fs.Arg(0), cfg)
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "darminer ingest:", err)
		return 1
	}
	return 0
}

// queryMain parses `darminer query` flags and runs the subcommand.
func queryMain(args []string) int {
	fs := flag.NewFlagSet("darminer query", flag.ExitOnError)
	var cfg queryConfig
	cfg.modeFlags(fs)
	fs.IntVar(&cfg.top, "top", 50, "print at most this many rules (0 = all)")
	fs.StringVar(&cfg.addr, "addr", "", "base URL of a running dard server (e.g. http://localhost:8344); the argument is then a catalog summary name, not a file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: darminer query [flags] data.acfsum")
		fmt.Fprintln(os.Stderr, "       darminer query [flags] -addr http://host:8344 summary-name")
		fs.PrintDefaults()
		return 2
	}
	var err error
	if cfg.addr != "" {
		err = runRemoteQuery(os.Stdout, cfg.addr, fs.Arg(0), cfg)
	} else {
		err = runQuery(os.Stdout, fs.Arg(0), cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "darminer query:", err)
		return 1
	}
	return 0
}

// mergeMain parses `darminer merge` flags and runs the subcommand.
func mergeMain(args []string) int {
	fs := flag.NewFlagSet("darminer merge", flag.ExitOnError)
	out := fs.String("o", "", "output summary path (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: darminer merge -o merged.acfsum shard1.acfsum shard2.acfsum ...")
		fs.PrintDefaults()
		return 2
	}
	if err := runMerge(os.Stdout, *out, fs.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "darminer merge:", err)
		return 1
	}
	return 0
}

// runIngest reads the CSV, runs the shared Phase I, and writes the
// encoded summary. Ingest-time parameters (thresholds, memory, grouping)
// are fixed here and recorded in the summary; query-time parameters
// (frequency, degree, metric) belong to `darminer query`.
func runIngest(w io.Writer, path string, cfg ingestConfig) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := dar.ReadCSV(f)
	if err != nil {
		return err
	}
	part, err := parseGroups(rel.Schema(), cfg.groups)
	if err != nil {
		return err
	}
	opt := dar.DefaultOptions()
	opt.DiameterThreshold = cfg.d0
	opt.MemoryLimit = cfg.memory
	opt.Workers = cfg.workers
	if cfg.d0 == 0 {
		suggested, err := dar.SuggestThresholds(rel, part, dar.AdvisorOptions{})
		if err != nil {
			return err
		}
		opt.DiameterThresholds = suggested
		fmt.Fprintf(w, "derived d0 per attribute: %v\n", suggested)
	}
	s, err := dar.Ingest(rel, part, opt)
	if err != nil {
		return err
	}
	data, err := dar.EncodeSummary(s)
	if err != nil {
		return err
	}
	out := cfg.out
	if out == "" {
		out = path + ".acfsum"
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	clusters := 0
	for _, g := range s.Groups {
		clusters += len(g.Clusters)
	}
	fmt.Fprintf(w, "ingested %d tuples into %d groups (%d clusters), wrote %d bytes to %s\n",
		s.Tuples, len(s.Groups), clusters, len(data), out)
	return nil
}

// runQuery decodes a summary and answers a rule query from it alone.
// Cluster descriptions come from the summary's recorded schema; with no
// relation available, bounding boxes are the centroid ± 2·radius
// estimate and rule supports are not counted — exactly the output of
// `darminer -nopostscan` over the original data.
func runQuery(w io.Writer, path string, cfg queryConfig) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := dar.DecodeSummary(data)
	if err != nil {
		return err
	}
	q, err := cfg.options()
	if err != nil {
		return err
	}
	res, err := dar.Query(s, q)
	if err != nil {
		return err
	}
	schema, err := s.Schema()
	if err != nil {
		return err
	}
	part, err := s.Partitioning(schema)
	if err != nil {
		return err
	}
	// Describe only reads the schema, so an empty relation over it serves
	// as the value formatter.
	rel := dar.NewRelation(schema)
	if cfg.asJSON {
		return dar.WriteJSON(w, res, rel, part)
	}
	fmt.Fprintf(w, "summary: %d tuples, %d groups, %d shard(s)\n", s.Tuples, len(s.Groups), s.Shards)
	fmt.Fprintf(w, "phase II: %v, %d cliques, %d rules\n", res.PhaseII.Duration, res.PhaseII.Cliques, len(res.Rules))
	for _, p := range res.Sweep {
		fmt.Fprintf(w, "sweep degree<=%g: %d rules\n", p.Factor, p.Rules)
	}
	for i, r := range res.Rules {
		if cfg.top > 0 && i == cfg.top {
			fmt.Fprintf(w, "... %d more rules\n", len(res.Rules)-cfg.top)
			break
		}
		fmt.Fprintln(w, res.DescribeRule(r, rel, part)+formatMeasures(r.Measures))
	}
	return nil
}

// formatMeasures renders the optional measure annotation of one rule
// for text output; the ∞ stands for the ConvictionInfinite sentinel.
func formatMeasures(m *dar.RuleMeasures) string {
	if m == nil {
		return ""
	}
	conv := fmt.Sprintf("%.2f", m.Conviction)
	if m.Conviction == dar.ConvictionInfinite {
		conv = "∞"
	}
	return fmt.Sprintf(" [sup %.2f conf %.2f lift %.2f conv %s]", m.Support, m.Confidence, m.Lift, conv)
}

// runMerge folds the shard summaries left to right and writes the
// combined summary.
func runMerge(w io.Writer, out string, inputs []string) error {
	var merged *dar.Summary
	for _, path := range inputs {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		s, err := dar.DecodeSummary(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if merged == nil {
			merged = s
			continue
		}
		merged, err = dar.MergeSummaries(merged, s)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	data, err := dar.EncodeSummary(merged)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "merged %d summaries (%d tuples, %d shards), wrote %d bytes to %s\n",
		len(inputs), merged.Tuples, merged.Shards, len(data), out)
	return nil
}
