package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestStartProfilesWritesBothFiles runs a profiled mining pass and
// checks that both profile files come out non-empty and the stop
// function is safe to call exactly once.
func TestStartProfilesWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := startProfiles(cpu, mem)
	if err != nil {
		t.Fatalf("startProfiles: %v", err)
	}
	path := writeTestCSV(t)
	if err := run(io.Discard, path, runConfig{algo: "dar", d0: 2000, minsup: 0.1, degree: 1, metric: "D2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestStartProfilesDisabled checks the no-flags path is a no-op.
func TestStartProfilesDisabled(t *testing.T) {
	stop, err := startProfiles("", "")
	if err != nil {
		t.Fatalf("startProfiles: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}
