package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// startDard mounts a fresh dard server over a temp data dir and ingests
// the golden interval dataset into it under the given name, using the
// same parameters as goldenIngestCfg.
func startDard(t *testing.T, name string) *httptest.Server {
	t.Helper()
	srv, _, err := server.New(server.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	csv, err := os.ReadFile(filepath.Join("testdata", "interval_input.csv"))
	if err != nil {
		t.Fatalf("reading dataset: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest?name="+name+"&d0=5", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	return ts
}

// TestRemoteQueryMatchesLocal is the remote differential: `query -addr`
// against a dard server must emit byte-identical JSON (wall-clock lines
// aside) to a local `ingest | query -json` over the same dataset and
// parameters, at serial and parallel worker counts.
func TestRemoteQueryMatchesLocal(t *testing.T) {
	ts := startDard(t, "interval")
	for _, workers := range []int{1, 4} {
		cfg := goldenQueryCfg(workers)
		cfg.asJSON = true

		sum := filepath.Join(t.TempDir(), "local.acfsum")
		if err := runIngest(io.Discard, filepath.Join("testdata", "interval_input.csv"), goldenIngestCfg(sum)); err != nil {
			t.Fatalf("runIngest: %v", err)
		}
		var local bytes.Buffer
		if err := runQuery(&local, sum, cfg); err != nil {
			t.Fatalf("runQuery(local): %v", err)
		}

		var remote bytes.Buffer
		if err := runRemoteQuery(&remote, ts.URL, "interval", cfg); err != nil {
			t.Fatalf("runRemoteQuery: %v", err)
		}

		if got, want := stripTimings(remote.String()), stripTimings(local.String()); got != want {
			t.Errorf("workers=%d: remote JSON diverges from local\n--- remote ---\n%s\n--- local ---\n%s",
				workers, got, want)
		}
	}
}

// TestRemoteQueryText checks the human rendering and error paths of the
// remote client.
func TestRemoteQueryText(t *testing.T) {
	ts := startDard(t, "interval")
	cfg := goldenQueryCfg(1)

	var out bytes.Buffer
	if err := runRemoteQuery(&out, ts.URL, "interval", cfg); err != nil {
		t.Fatalf("runRemoteQuery: %v", err)
	}
	if !strings.Contains(out.String(), "rules") || !strings.Contains(out.String(), "⇒") {
		t.Errorf("text output carries no rules:\n%s", out.String())
	}

	if err := runRemoteQuery(&out, ts.URL, "nosuch", cfg); err == nil {
		t.Error("querying an unknown summary should fail")
	} else if !strings.Contains(err.Error(), "unknown summary") {
		t.Errorf("error %q does not name the missing summary", err)
	}

	if err := runRemoteQuery(&out, "not a url", "interval", cfg); err == nil {
		t.Error("a bogus -addr should fail fast")
	}
}
