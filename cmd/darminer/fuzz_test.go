package main

import (
	"math"
	"strings"
	"testing"

	dar "repro"
	"repro/internal/relation"
)

// FuzzParseRelation fuzzes the CSV ingestion path darminer feeds every
// miner from: arbitrary input must either fail with an error or produce
// a relation that is consistent with its own schema — every tuple has
// the schema's width, interval values are finite, nominal codes are
// integral indices into their dictionary, and the default singleton
// partitioning (what `run` builds before mining) accepts the schema.
func FuzzParseRelation(f *testing.F) {
	f.Add("Age:interval,Salary:interval,Dept:nominal\n30,40,Eng\n55,90,Sales\n")
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("a:nominal\nx\ny\nx\n")
	f.Add("a:interval\n1e308\n-1e308\n")
	f.Add("a:interval\nNaN\n")
	f.Add("a:interval\nInf\n")
	f.Add("a:bogus\n1\n")
	f.Add("a,a\n1,2\n")
	f.Add("\"a:interval\",b\n\"1\",2\n")
	f.Add("a\n1\n2,3\n")
	f.Add("")
	f.Add(",\n,\n")
	f.Fuzz(func(t *testing.T, input string) {
		rel, err := dar.ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		schema := rel.Schema()
		width := schema.Width()
		if width < 1 {
			t.Fatalf("parsed relation with %d attributes from %q", width, input)
		}
		rows := 0
		err = rel.Scan(func(_ int, tuple []float64) error {
			rows++
			if len(tuple) != width {
				t.Fatalf("tuple width %d != schema width %d", len(tuple), width)
			}
			for i, v := range tuple {
				a := schema.Attr(i)
				if a.Kind == relation.Nominal {
					if v != math.Trunc(v) || v < 0 || int(v) >= a.Dict.Len() {
						t.Fatalf("column %q: code %v outside dictionary of %d values", a.Name, v, a.Dict.Len())
					}
					continue
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("column %q: non-finite value %v survived parsing", a.Name, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if rows != rel.Len() {
			t.Fatalf("Scan yielded %d rows, Len reports %d", rows, rel.Len())
		}
		if _, err := parseGroups(schema, ""); err != nil {
			t.Fatalf("singleton partitioning rejected parsed schema: %v", err)
		}
	})
}
