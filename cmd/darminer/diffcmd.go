// The diff subcommand reports rule drift between two summaries — two
// ingests of a shifting relation, or one shard against the merged
// fleet: which rules appeared, which vanished, and which changed
// degree, matched by rendered signature so nominal dictionary order
// differences between the summaries do not matter.
//
//	darminer diff -minsup 0.2 old.acfsum new.acfsum
//	darminer diff -addr http://host:8344 old-name new-name
//
// Both sides are queried under the same options; all query-mode flags
// of `darminer query` apply. With -json the output is byte-identical
// between the local and remote paths (the differential tests pin it).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	dar "repro"
)

// diffMain parses `darminer diff` flags and runs the subcommand.
func diffMain(args []string) int {
	fs := flag.NewFlagSet("darminer diff", flag.ExitOnError)
	var cfg queryConfig
	cfg.modeFlags(fs)
	fs.StringVar(&cfg.addr, "addr", "", "base URL of a running dard server; the arguments are then two catalog summary names, not files")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: darminer diff [flags] old.acfsum new.acfsum")
		fmt.Fprintln(os.Stderr, "       darminer diff [flags] -addr http://host:8344 old-name new-name")
		fs.PrintDefaults()
		return 2
	}
	var err error
	if cfg.addr != "" {
		err = runRemoteDiff(os.Stdout, cfg.addr, fs.Arg(0), fs.Arg(1), cfg)
	} else {
		err = runDiff(os.Stdout, fs.Arg(0), fs.Arg(1), cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "darminer diff:", err)
		return 1
	}
	return 0
}

// runDiff queries both summary files under the same options and prints
// the signature diff.
func runDiff(w io.Writer, oldPath, newPath string, cfg queryConfig) error {
	q, err := cfg.options()
	if err != nil {
		return err
	}
	oldRes, oldRel, oldPart, err := queryFile(oldPath, q)
	if err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	newRes, newRel, newPart, err := queryFile(newPath, q)
	if err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	d := dar.DiffRules(oldRes, newRes, oldRel, newRel, oldPart, newPart)
	if cfg.asJSON {
		return dar.WriteDiffJSON(w, d)
	}
	printDiff(w, oldPath, newPath, d)
	return nil
}

// queryFile decodes one .acfsum file and answers the query from it,
// returning the pieces a diff needs: the result plus the summary's own
// schema-backed formatter and partitioning.
func queryFile(path string, q dar.QueryOptions) (*dar.Result, *dar.Relation, *dar.Partitioning, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := dar.DecodeSummary(data)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := dar.Query(s, q)
	if err != nil {
		return nil, nil, nil, err
	}
	schema, err := s.Schema()
	if err != nil {
		return nil, nil, nil, err
	}
	part, err := s.Partitioning(schema)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, dar.NewRelation(schema), part, nil
}

// printDiff renders the human-readable diff: a summary line, then one
// line per added (+), removed (−) and degree-changed (~) rule, in the
// deterministic signature order DiffRules established.
func printDiff(w io.Writer, oldLabel, newLabel string, d dar.RuleDiff) {
	fmt.Fprintf(w, "diff %s → %s: %d added, %d removed, %d changed, %d unchanged (tuples %d → %d)\n",
		oldLabel, newLabel, len(d.Added), len(d.Removed), len(d.Changed), d.Unchanged, d.OldTuples, d.NewTuples)
	for _, e := range d.Added {
		fmt.Fprintf(w, "+ %s (degree %.3f)\n", e.Signature, e.Degree)
	}
	for _, e := range d.Removed {
		fmt.Fprintf(w, "- %s (degree %.3f)\n", e.Signature, e.Degree)
	}
	for _, c := range d.Changed {
		fmt.Fprintf(w, "~ %s (degree %.3f → %.3f)\n", c.Signature, c.OldDegree, c.NewDegree)
	}
}
