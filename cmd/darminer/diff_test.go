package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	dar "repro"
)

// driftedIntervalCSV returns the golden interval dataset with every
// salary shifted up by delta — deterministic rule drift for the diff
// tests to detect.
func driftedIntervalCSV(t *testing.T, delta float64) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "interval_input.csv"))
	if err != nil {
		t.Fatalf("reading dataset: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var b bytes.Buffer
	b.WriteString(lines[0] + "\n")
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		salary, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		fmt.Fprintf(&b, "%s,%g\n", fields[0], salary+delta)
	}
	return b.Bytes()
}

// ingestTemp ingests a CSV byte blob into a temp .acfsum and returns
// its path.
func ingestTemp(t *testing.T, csv []byte) string {
	t.Helper()
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, csv, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.acfsum")
	if err := runIngest(io.Discard, in, goldenIngestCfg(out)); err != nil {
		t.Fatalf("runIngest: %v", err)
	}
	return out
}

// TestOldSummaryQueriesWithMeasures is the back-compat check: the
// committed .acfsum golden predates every query mode (the codec is
// unchanged — TestGoldenSummaryFile pins its bytes), yet it must answer
// mode queries: measures on every rule, filters resolved against its
// recorded groups, top-k and sweeps applied.
func TestOldSummaryQueriesWithMeasures(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_summary.acfsum"))
	if err != nil {
		t.Fatalf("reading committed summary: %v", err)
	}
	s, err := dar.DecodeSummary(data)
	if err != nil {
		t.Fatalf("DecodeSummary: %v", err)
	}
	q := dar.DefaultQueryOptions()
	q.FrequencyFraction = 0.2
	q.Measures = true
	q.ConsequentGroups = []string{"Salary"}
	q.SweepFactors = []float64{0.5, 1}
	q.TopK = 2
	res, err := dar.Query(s, q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Rules) == 0 || len(res.Rules) > 2 {
		t.Fatalf("top-2 query returned %d rules", len(res.Rules))
	}
	for i, r := range res.Rules {
		if r.Measures == nil {
			t.Errorf("rule %d not annotated", i)
		}
	}
	if len(res.Sweep) != 2 {
		t.Errorf("sweep has %d points, want 2", len(res.Sweep))
	}
}

// TestDiffCLISelf: diffing a summary against itself reports only
// unchanged rules, in both renderings.
func TestDiffCLISelf(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "interval_input.csv"))
	if err != nil {
		t.Fatal(err)
	}
	sum := ingestTemp(t, raw)
	cfg := goldenQueryCfg(1)

	var out bytes.Buffer
	if err := runDiff(&out, sum, sum, cfg); err != nil {
		t.Fatalf("runDiff: %v", err)
	}
	if !strings.Contains(out.String(), "0 added, 0 removed, 0 changed") {
		t.Errorf("self-diff not clean:\n%s", out.String())
	}

	out.Reset()
	cfg.asJSON = true
	if err := runDiff(&out, sum, sum, cfg); err != nil {
		t.Fatalf("runDiff -json: %v", err)
	}
	var d dar.RuleDiff
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatalf("parsing diff JSON: %v", err)
	}
	if len(d.Added)+len(d.Removed)+len(d.Changed) != 0 || d.Unchanged == 0 {
		t.Errorf("self-diff JSON not clean: %+v", d)
	}
}

// TestDiffCLIDrift: shifting every salary must surface as added and
// removed rules whose lines the text rendering marks + and -.
func TestDiffCLIDrift(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "interval_input.csv"))
	if err != nil {
		t.Fatal(err)
	}
	oldSum := ingestTemp(t, raw)
	newSum := ingestTemp(t, driftedIntervalCSV(t, 200))

	var out bytes.Buffer
	if err := runDiff(&out, oldSum, newSum, goldenQueryCfg(1)); err != nil {
		t.Fatalf("runDiff: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "\n+ ") || !strings.Contains(text, "\n- ") {
		t.Errorf("drift diff shows no added/removed lines:\n%s", text)
	}
	if !strings.HasPrefix(text, "diff "+oldSum+" → "+newSum+":") {
		t.Errorf("summary line does not name the inputs:\n%s", text)
	}
}

// TestRemoteDiffMatchesLocal: `diff -addr` against a dard server is
// byte-identical to the local two-file diff over the same data and
// options — the diff twin of TestRemoteQueryMatchesLocal.
func TestRemoteDiffMatchesLocal(t *testing.T) {
	ts := startDard(t, "old")
	drifted := driftedIntervalCSV(t, 200)
	resp, err := http.Post(ts.URL+"/v1/ingest?name=new&d0=5", "text/csv", bytes.NewReader(drifted))
	if err != nil {
		t.Fatalf("ingest drifted: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest drifted: status %d", resp.StatusCode)
	}

	raw, err := os.ReadFile(filepath.Join("testdata", "interval_input.csv"))
	if err != nil {
		t.Fatal(err)
	}
	oldSum, newSum := ingestTemp(t, raw), ingestTemp(t, drifted)

	cfg := goldenQueryCfg(1)
	cfg.asJSON = true
	var local, remote bytes.Buffer
	if err := runDiff(&local, oldSum, newSum, cfg); err != nil {
		t.Fatalf("runDiff(local): %v", err)
	}
	if err := runRemoteDiff(&remote, ts.URL, "old", "new", cfg); err != nil {
		t.Fatalf("runRemoteDiff: %v", err)
	}
	if local.String() != remote.String() {
		t.Errorf("remote diff diverges from local:\n--- remote ---\n%s\n--- local ---\n%s",
			remote.String(), local.String())
	}

	// The text rendering goes through the same printDiff on both paths.
	cfg.asJSON = false
	var text bytes.Buffer
	if err := runRemoteDiff(&text, ts.URL, "old", "new", cfg); err != nil {
		t.Fatalf("runRemoteDiff(text): %v", err)
	}
	if !strings.HasPrefix(text.String(), "diff old → new:") {
		t.Errorf("remote text diff summary line:\n%s", text.String())
	}
}

// TestDiffCLIRejectsBadModes: option errors surface before any file or
// network access.
func TestDiffCLIRejectsBadModes(t *testing.T) {
	cfg := goldenQueryCfg(1)
	cfg.sweep = "0.5,0.2,banana"
	if err := runDiff(io.Discard, "nope.acfsum", "nope.acfsum", cfg); err == nil {
		t.Error("bad -sweep accepted")
	}
	cfg = goldenQueryCfg(1)
	cfg.topk = -1
	if err := runDiff(io.Discard, "nope.acfsum", "nope.acfsum", cfg); err == nil {
		t.Error("negative -topk accepted")
	}
}
