// Command darminer mines distance-based association rules from a CSV
// file whose header annotates attribute kinds ("name:interval",
// "name:nominal", plain names default to interval):
//
//	darminer -d0 2500 -minsup 0.03 data.csv
//
// Flags select the algorithm (-algo dar|qar|sa96), thresholds, the
// cluster metric, the Phase I memory budget, and the worker count
// (-workers N parallelizes both mining phases without changing the
// output). Rules print one per line, strongest first, with bounding-box
// cluster descriptions.
//
// The ingest/query/merge subcommands split the same pipeline around a
// persistable .acfsum summary file — see summarycmd.go:
//
//	darminer ingest -d0 5 -o data.acfsum data.csv
//	darminer query -minsup 0.2 data.acfsum
//	darminer merge -o all.acfsum shard1.acfsum shard2.acfsum
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	dar "repro"
	"repro/internal/classical"
	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/qar"
	"repro/internal/relation"
)

// runConfig carries the flag values into run; the zero value of a field
// means the matching flag's zero, not the flag default.
type runConfig struct {
	algo    string
	d0      float64
	minsup  float64
	degree  float64
	minconf float64
	metric  string
	memory  int
	nparts  int
	top     int
	workers int
	asJSON  bool
	groups  string
	// noPostScan disables the descriptive rescans of Section 6.2
	// (inverted so the zero value keeps the default behaviour).
	noPostScan bool
	cpuprofile string
	memprofile string
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "ingest":
			os.Exit(ingestMain(os.Args[2:]))
		case "query":
			os.Exit(queryMain(os.Args[2:]))
		case "merge":
			os.Exit(mergeMain(os.Args[2:]))
		case "diff":
			os.Exit(diffMain(os.Args[2:]))
		}
	}
	var cfg runConfig
	flag.StringVar(&cfg.algo, "algo", "dar", "mining algorithm: dar (distance-based), qar (generalized quantitative), sa96 (equi-depth baseline), classical (adaptive 1-itemset counting)")
	flag.Float64Var(&cfg.d0, "d0", 0, "diameter/density threshold d0 in data units (0 = derive per attribute from the data)")
	flag.Float64Var(&cfg.minsup, "minsup", 0.03, "frequency threshold s0 as a fraction of the relation")
	flag.Float64Var(&cfg.degree, "degree", 1, "degree-of-association factor (rules must satisfy degree <= factor; lower is stricter)")
	flag.Float64Var(&cfg.minconf, "minconf", 0.6, "minimum confidence (qar and sa96 modes)")
	flag.StringVar(&cfg.metric, "metric", "D2", "cluster metric: D0, D1 or D2")
	flag.IntVar(&cfg.memory, "memory", 0, "Phase I memory budget in bytes (0 = unlimited; the paper used 5MB)")
	flag.IntVar(&cfg.nparts, "partitions", 10, "equi-depth partitions per attribute (sa96 mode)")
	flag.IntVar(&cfg.top, "top", 50, "print at most this many rules (0 = all)")
	flag.IntVar(&cfg.workers, "workers", 1, "worker goroutines for both mining phases (dar and qar modes; output is identical at any count)")
	flag.BoolVar(&cfg.asJSON, "json", false, "emit the full result as JSON (dar mode only)")
	flag.StringVar(&cfg.groups, "groups", "", "attribute grouping, e.g. \"lat+lon,price\" (default: one group per attribute; dar and qar modes)")
	flag.BoolVar(&cfg.noPostScan, "nopostscan", false, "skip the descriptive rescans (dar mode): approximate bounding boxes, uncounted rule supports")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: darminer [flags] data.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	stop, err := startProfiles(cfg.cpuprofile, cfg.memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darminer:", err)
		os.Exit(1)
	}
	err = run(os.Stdout, flag.Arg(0), cfg)
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "darminer:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, path string, cfg runConfig) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := dar.ReadCSV(f)
	if err != nil {
		return err
	}
	if !cfg.asJSON {
		fmt.Fprintf(w, "loaded %d tuples, %d attributes\n", rel.Len(), rel.Schema().Width())
	}
	part, err := parseGroups(rel.Schema(), cfg.groups)
	if err != nil {
		return err
	}

	switch cfg.algo {
	case "dar":
		m, ok := distance.ParseClusterMetric(cfg.metric)
		if !ok {
			return fmt.Errorf("unknown metric %q", cfg.metric)
		}
		opt := dar.DefaultOptions()
		opt.Metric = m
		opt.DiameterThreshold = cfg.d0
		opt.FrequencyFraction = cfg.minsup
		opt.DegreeFactor = cfg.degree
		opt.MemoryLimit = cfg.memory
		opt.Workers = cfg.workers
		opt.PostScan = !cfg.noPostScan
		if cfg.d0 == 0 {
			suggested, err := dar.SuggestThresholds(rel, part, dar.AdvisorOptions{})
			if err != nil {
				return err
			}
			opt.DiameterThresholds = suggested
			if !cfg.asJSON {
				fmt.Fprintf(w, "derived d0 per attribute: %v\n", suggested)
			}
		}
		res, err := dar.Mine(rel, part, opt)
		if err != nil {
			return err
		}
		if cfg.asJSON {
			return dar.WriteJSON(w, res, rel, part)
		}
		fmt.Fprintf(w, "phase I: %v, %d clusters (%d frequent, %d rebuilds)\n",
			res.PhaseI.Duration, res.PhaseI.ClustersFound, res.PhaseI.FrequentClusters, res.PhaseI.Rebuilds)
		fmt.Fprintf(w, "phase II: %v, %d cliques, %d rules\n",
			res.PhaseII.Duration, res.PhaseII.Cliques, len(res.Rules))
		for i, r := range res.Rules {
			if cfg.top > 0 && i == cfg.top {
				fmt.Fprintf(w, "... %d more rules\n", len(res.Rules)-cfg.top)
				break
			}
			fmt.Fprintln(w, res.DescribeRule(r, rel, part))
		}
		return nil

	case "qar":
		opt := dar.DefaultOptions()
		opt.DiameterThreshold = cfg.d0
		opt.FrequencyFraction = cfg.minsup
		opt.MemoryLimit = cfg.memory
		opt.Workers = cfg.workers
		res, err := dar.MineQAR(rel, part, opt, cfg.minconf)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "phase I: %v, %d clusters; phase II: %v, %d rules\n",
			res.PhaseI.Duration, len(res.Clusters), res.PhaseII, len(res.Rules))
		for i, r := range res.Rules {
			if cfg.top > 0 && i == cfg.top {
				fmt.Fprintf(w, "... %d more rules\n", len(res.Rules)-cfg.top)
				break
			}
			fmt.Fprintln(w, describeQAR(res, r, rel, part))
		}
		return nil

	case "classical":
		res, err := classical.Mine(rel, classical.Options{
			MaxEntriesPerAttr: maxEntriesFromBudget(cfg.memory, rel.Schema().Width()),
			MinSupport:        cfg.minsup,
			MinConfidence:     cfg.minconf,
			MaxLen:            5,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "mined %d rules from %d items in %v (exact: %v, collapses: %d)\n",
			len(res.Rules), len(res.Items), res.Duration, res.Exact, res.Collapses)
		for i, r := range res.Rules {
			if cfg.top > 0 && i == cfg.top {
				fmt.Fprintf(w, "... %d more rules\n", len(res.Rules)-cfg.top)
				break
			}
			fmt.Fprintln(w, r.Describe(rel))
		}
		return nil

	case "sa96":
		res, err := qar.Mine(rel, qar.Options{
			Partitions:    cfg.nparts,
			MinSupport:    cfg.minsup,
			MinConfidence: cfg.minconf,
			MaxLen:        5,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "mined %d rules in %v\n", len(res.Rules), res.Duration)
		for i, r := range res.Rules {
			if cfg.top > 0 && i == cfg.top {
				fmt.Fprintf(w, "... %d more rules\n", len(res.Rules)-cfg.top)
				break
			}
			fmt.Fprintln(w, r.Describe(rel))
		}
		return nil

	default:
		return fmt.Errorf("unknown algorithm %q (want dar, qar, sa96 or classical)", cfg.algo)
	}
}

// parseGroups builds a partitioning from a comma-separated spec of
// "+"-joined attribute names ("lat+lon,price"); attributes not mentioned
// get their own singleton group. An empty spec is all-singletons. The
// grammar lives in the library (ParseGroupsSpec) so the dard server
// speaks exactly the same syntax.
func parseGroups(schema *dar.Schema, spec string) (*dar.Partitioning, error) {
	return dar.ParseGroupsSpec(schema, spec)
}

// maxEntriesFromBudget converts a byte budget to a per-attribute entry
// cap for the classical mode (one Entry is ≈40 bytes); 0 stays unlimited.
func maxEntriesFromBudget(bytes, attrs int) int {
	if bytes <= 0 || attrs <= 0 {
		return 0
	}
	per := bytes / attrs / 40
	if per < 2 {
		per = 2
	}
	return per
}

func describeQAR(res *core.QARResult, r core.QARRule, rel *relation.Relation, part *relation.Partitioning) string {
	out := ""
	for i, id := range r.Antecedent {
		if i > 0 {
			out += " ∧ "
		}
		out += res.Clusters[id].Describe(rel, part)
	}
	out += " ⇒ "
	for i, id := range r.Consequent {
		if i > 0 {
			out += " ∧ "
		}
		out += res.Clusters[id].Describe(rel, part)
	}
	return fmt.Sprintf("%s (sup %.2f, conf %.2f)", out, r.Support, r.Confidence)
}
