package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from the serial run")

// goldenCfg is the fixed CLI configuration the golden file was recorded
// under; only the worker count varies across the comparison runs.
func goldenCfg(workers int) runConfig {
	return runConfig{
		algo: "dar", d0: 5, minsup: 0.2, degree: 1, minconf: 0.6,
		metric: "D2", nparts: 10, workers: workers,
	}
}

// stripTimings drops the wall-clock lines — text-mode phase reports and
// JSON "durationMs" fields — the only legitimately nondeterministic
// part of the CLI output.
func stripTimings(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "phase I:") || strings.HasPrefix(line, "phase II:") ||
			strings.Contains(line, `"durationMs"`) {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestGoldenCLIWorkers verifies that `darminer -workers N` reproduces the
// committed serial golden output byte for byte at every worker count.
// Regenerate with `go test ./cmd/darminer -run TestGoldenCLIWorkers -update`
// after an intentional output change.
func TestGoldenCLIWorkers(t *testing.T) {
	input := filepath.Join("testdata", "golden_input.csv")
	goldenPath := filepath.Join("testdata", "golden_rules.txt")

	if *updateGolden {
		var buf bytes.Buffer
		if err := run(&buf, input, goldenCfg(1)); err != nil {
			t.Fatalf("run(serial): %v", err)
		}
		if err := os.WriteFile(goldenPath, []byte(stripTimings(buf.String())), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !strings.Contains(string(golden), "⇒") {
		t.Fatalf("golden file holds no rules; the comparison is vacuous:\n%s", golden)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		var buf bytes.Buffer
		if err := run(&buf, input, goldenCfg(workers)); err != nil {
			t.Fatalf("run(workers=%d): %v", workers, err)
		}
		if got := stripTimings(buf.String()); got != string(golden) {
			t.Errorf("workers=%d output diverged from golden:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, golden)
		}
	}
}
