package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dar "repro"
	"repro/internal/summary"
)

// goldenIngestCfg is the fixed ingest configuration the committed
// .acfsum golden was recorded under.
func goldenIngestCfg(out string) ingestConfig {
	return ingestConfig{d0: 5, workers: 1, out: out}
}

// goldenQueryCfg mirrors goldenCfg's Phase II knobs for the query path.
// Measures are on: the goldens pin the annotated serving contract
// (support bound, confidence, lift, conviction on every rule), and —
// because the .acfsum codec predates the measures and is unchanged —
// double as the back-compat proof that old summary files answer
// measure-annotated queries.
func goldenQueryCfg(workers int) queryConfig {
	return queryConfig{minsup: 0.2, degree: 1, metric: "D2", workers: workers, measures: true}
}

// ruleLines extracts just the rule lines ("A ⇒ B (degree ...)") from CLI
// output, dropping headers and phase reports.
func ruleLines(out string) []string {
	var rules []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "⇒") {
			rules = append(rules, line)
		}
	}
	return rules
}

// TestGoldenSummaryFile checks that a fresh ingest of the committed
// interval input reproduces the committed .acfsum byte for byte — the
// on-disk format is part of the CLI contract. Regenerate with
// `go test ./cmd/darminer -run TestGoldenSummaryFile -update` after an
// intentional format change (and bump the codec version).
func TestGoldenSummaryFile(t *testing.T) {
	input := filepath.Join("testdata", "interval_input.csv")
	goldenPath := filepath.Join("testdata", "golden_summary.acfsum")

	fresh := filepath.Join(t.TempDir(), "fresh.acfsum")
	var buf bytes.Buffer
	if err := runIngest(&buf, input, goldenIngestCfg(fresh)); err != nil {
		t.Fatalf("runIngest: %v", err)
	}
	got, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}

	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden summary (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ingest output diverged from committed golden: %d vs %d bytes", len(got), len(want))
	}
}

// TestGoldenQuerySummary checks `darminer query` against a committed
// golden transcript at every worker count.
func TestGoldenQuerySummary(t *testing.T) {
	goldenSum := filepath.Join("testdata", "golden_summary.acfsum")
	goldenPath := filepath.Join("testdata", "golden_query_rules.txt")

	if *updateGolden {
		var buf bytes.Buffer
		if err := runQuery(&buf, goldenSum, goldenQueryCfg(1)); err != nil {
			t.Fatalf("runQuery(serial): %v", err)
		}
		if err := os.WriteFile(goldenPath, []byte(stripTimings(buf.String())), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !strings.Contains(string(golden), "⇒") {
		t.Fatalf("golden file holds no rules; the comparison is vacuous:\n%s", golden)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		var buf bytes.Buffer
		if err := runQuery(&buf, goldenSum, goldenQueryCfg(workers)); err != nil {
			t.Fatalf("runQuery(workers=%d): %v", workers, err)
		}
		if got := stripTimings(buf.String()); got != string(golden) {
			t.Errorf("workers=%d query diverged from golden:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, golden)
		}
	}
}

// TestGoldenQueryJSON checks `darminer query -json` against a committed
// golden transcript — the machine-readable twin of the rule-text golden
// above, and the document the dard server serves byte-for-byte. The
// wall-clock lines ("durationMs") are stripped on both sides; worker
// counts 1 and 4 must render identically. Regenerate with -update.
func TestGoldenQueryJSON(t *testing.T) {
	goldenSum := filepath.Join("testdata", "golden_summary.acfsum")
	goldenPath := filepath.Join("testdata", "golden_query_rules.json")

	if *updateGolden {
		cfg := goldenQueryCfg(1)
		cfg.asJSON = true
		var buf bytes.Buffer
		if err := runQuery(&buf, goldenSum, cfg); err != nil {
			t.Fatalf("runQuery(serial): %v", err)
		}
		if err := os.WriteFile(goldenPath, []byte(stripTimings(buf.String())), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !strings.Contains(string(golden), `"rules"`) {
		t.Fatalf("golden JSON holds no rules key; the comparison is vacuous:\n%s", golden)
	}
	for _, workers := range []int{1, 4} {
		cfg := goldenQueryCfg(workers)
		cfg.asJSON = true
		var buf bytes.Buffer
		if err := runQuery(&buf, goldenSum, cfg); err != nil {
			t.Fatalf("runQuery(workers=%d): %v", workers, err)
		}
		if got := stripTimings(buf.String()); got != string(golden) {
			t.Errorf("workers=%d JSON diverged from golden:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, golden)
		}
	}
}

// TestIngestQueryMatchesMine pins the CLI-level differential: the rule
// lines of `ingest | query` must equal those of a one-shot
// `darminer -nopostscan` run over the same data and parameters.
func TestIngestQueryMatchesMine(t *testing.T) {
	input := filepath.Join("testdata", "interval_input.csv")

	var mineBuf bytes.Buffer
	cfg := goldenCfg(1)
	cfg.noPostScan = true // the summary path has no relation to rescan
	if err := run(&mineBuf, input, cfg); err != nil {
		t.Fatalf("run(mine): %v", err)
	}
	mined := ruleLines(mineBuf.String())
	if len(mined) == 0 {
		t.Fatalf("mine emitted no rules; comparison is vacuous:\n%s", mineBuf.String())
	}

	sum := filepath.Join(t.TempDir(), "s.acfsum")
	var buf bytes.Buffer
	if err := runIngest(&buf, input, goldenIngestCfg(sum)); err != nil {
		t.Fatalf("runIngest: %v", err)
	}
	buf.Reset()
	qcfg := goldenQueryCfg(1)
	qcfg.measures = false // mine's text output carries no measure suffixes
	if err := runQuery(&buf, sum, qcfg); err != nil {
		t.Fatalf("runQuery: %v", err)
	}
	queried := ruleLines(buf.String())

	if strings.Join(queried, "\n") != strings.Join(mined, "\n") {
		t.Errorf("ingest|query rules diverge from mine -nopostscan:\n--- query ---\n%s\n--- mine ---\n%s",
			strings.Join(queried, "\n"), strings.Join(mined, "\n"))
	}
}

// TestMergeCLI ingests two shards — with nominal dictionaries built in
// different first-seen orders — merges them, and checks the merged query
// answers exactly like a query over a single-pass ingest of the whole.
func TestMergeCLI(t *testing.T) {
	dir := t.TempDir()
	// Exact integer salaries, so shard sums are order-independent.
	shard1 := "Job:nominal,Salary:interval\nDBA,40000\nDBA,40000\nDBA,40000\nMgr,90000\nMgr,90000\n"
	shard2 := "Job:nominal,Salary:interval\nMgr,90000\nEng,60000\nEng,60000\nDBA,40000\nDBA,40000\n"
	whole := "Job:nominal,Salary:interval\nDBA,40000\nDBA,40000\nDBA,40000\nMgr,90000\nMgr,90000\nMgr,90000\nEng,60000\nEng,60000\nDBA,40000\nDBA,40000\n"
	paths := map[string]string{"shard1.csv": shard1, "shard2.csv": shard2, "whole.csv": whole}
	for name, content := range paths {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	icfg := func(out string) ingestConfig { return ingestConfig{d0: 5, workers: 1, out: out} }
	for _, name := range []string{"shard1", "shard2", "whole"} {
		if err := runIngest(&buf, filepath.Join(dir, name+".csv"), icfg(filepath.Join(dir, name+".acfsum"))); err != nil {
			t.Fatalf("runIngest(%s): %v", name, err)
		}
	}

	merged := filepath.Join(dir, "merged.acfsum")
	buf.Reset()
	err := runMerge(&buf, merged, []string{filepath.Join(dir, "shard1.acfsum"), filepath.Join(dir, "shard2.acfsum")})
	if err != nil {
		t.Fatalf("runMerge: %v", err)
	}
	if !strings.Contains(buf.String(), "10 tuples, 2 shards") {
		t.Errorf("merge report: %s", buf.String())
	}

	qcfg := queryConfig{minsup: 0.15, degree: 1, metric: "D2", workers: 1}
	var mergedOut, wholeOut bytes.Buffer
	if err := runQuery(&mergedOut, merged, qcfg); err != nil {
		t.Fatalf("runQuery(merged): %v", err)
	}
	if err := runQuery(&wholeOut, filepath.Join(dir, "whole.acfsum"), qcfg); err != nil {
		t.Fatalf("runQuery(whole): %v", err)
	}
	mergedRules := ruleLines(mergedOut.String())
	wholeRules := ruleLines(wholeOut.String())
	if len(wholeRules) == 0 {
		t.Fatalf("whole-relation query emitted no rules:\n%s", wholeOut.String())
	}
	if strings.Join(mergedRules, "\n") != strings.Join(wholeRules, "\n") {
		t.Errorf("merged query diverges from single-pass query:\n--- merged ---\n%s\n--- whole ---\n%s",
			strings.Join(mergedRules, "\n"), strings.Join(wholeRules, "\n"))
	}
}

// TestQueryRejectsBadSummaries: corruption fails the checksum, and a
// future format version is refused outright — even with a valid
// checksum — rather than misparsed.
func TestQueryRejectsBadSummaries(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_summary.acfsum"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var buf bytes.Buffer

	corrupt := append([]byte(nil), golden...)
	corrupt[len(corrupt)/2] ^= 0x40
	corruptPath := filepath.Join(dir, "corrupt.acfsum")
	if err := os.WriteFile(corruptPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(&buf, corruptPath, goldenQueryCfg(1)); err == nil {
		t.Error("corrupted summary accepted")
	}

	// Bump the version byte and re-seal the CRC so only the version check
	// can reject it.
	future := append([]byte(nil), golden...)
	future[4]++
	binary.LittleEndian.PutUint32(future[len(future)-4:], crc32.ChecksumIEEE(future[:len(future)-4]))
	futurePath := filepath.Join(dir, "future.acfsum")
	if err := os.WriteFile(futurePath, future, 0o644); err != nil {
		t.Fatal(err)
	}
	err = runQuery(&buf, futurePath, goldenQueryCfg(1))
	if !errors.Is(err, summary.ErrVersion) {
		t.Errorf("future version: err = %v, want ErrVersion", err)
	}
}

// TestQueryJSON exercises the JSON output path over a summary whose
// schema — including the nominal dictionary — was reconstructed from the
// file rather than the data.
func TestQueryJSON(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "data.csv")
	content := "Job:nominal,Salary:interval\nDBA,40000\nDBA,40000\nMgr,90000\nMgr,90000\n"
	if err := os.WriteFile(csv, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	sum := filepath.Join(dir, "data.acfsum")
	var buf bytes.Buffer
	if err := runIngest(&buf, csv, ingestConfig{d0: 5, workers: 1, out: sum}); err != nil {
		t.Fatalf("runIngest: %v", err)
	}
	buf.Reset()
	if err := runQuery(&buf, sum, queryConfig{minsup: 0.25, degree: 1, metric: "D2", workers: 1, asJSON: true}); err != nil {
		t.Fatalf("runQuery: %v", err)
	}
	if !strings.Contains(buf.String(), "\"tuples\": 4") {
		t.Errorf("JSON output missing tuple count:\n%s", buf.String())
	}
}

// TestIngestDerivesThresholds covers the -d0 0 advisor path of the
// ingest subcommand.
func TestIngestDerivesThresholds(t *testing.T) {
	input := filepath.Join("testdata", "interval_input.csv")
	out := filepath.Join(t.TempDir(), "auto.acfsum")
	var buf bytes.Buffer
	if err := runIngest(&buf, input, ingestConfig{d0: 0, workers: 1, out: out}); err != nil {
		t.Fatalf("runIngest: %v", err)
	}
	if !strings.Contains(buf.String(), "derived d0 per attribute") {
		t.Errorf("no derivation notice:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dar.DecodeSummary(data); err != nil {
		t.Errorf("derived-threshold summary does not decode: %v", err)
	}
}
