package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dar "repro"
)

// writeTestCSV writes a small planted workload and returns its path.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	schema := dar.MustSchema(
		dar.Attribute{Name: "Age", Kind: dar.Interval},
		dar.Attribute{Name: "Salary", Kind: dar.Interval},
	)
	rel := dar.NewRelation(schema)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			rel.MustAppend([]float64{30 + rng.NormFloat64(), 40000 + rng.NormFloat64()*200})
		} else {
			rel.MustAppend([]float64{55 + rng.NormFloat64(), 90000 + rng.NormFloat64()*200})
		}
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dar.WriteCSV(f, rel); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDAR(t *testing.T) {
	path := writeTestCSV(t)
	var buf bytes.Buffer
	err := run(&buf, path, runConfig{algo: "dar", d0: 2000, minsup: 0.1, degree: 1, minconf: 0.6, metric: "D2", memory: 0, nparts: 10, top: 0, asJSON: false})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "loaded 400 tuples") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "⇒") || !strings.Contains(out, "degree") {
		t.Errorf("no rules printed:\n%s", out)
	}
}

func TestRunDARJSON(t *testing.T) {
	path := writeTestCSV(t)
	var buf bytes.Buffer
	err := run(&buf, path, runConfig{algo: "dar", d0: 2000, minsup: 0.1, degree: 1, minconf: 0.6, metric: "D2", memory: 0, nparts: 10, top: 0, asJSON: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc struct {
		Tuples int `json:"tuples"`
		Rules  []struct {
			Degree float64 `json:"degree"`
		} `json:"rules"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Tuples != 400 || len(doc.Rules) == 0 {
		t.Errorf("JSON doc = %+v", doc)
	}
}

func TestRunQARAndSA96(t *testing.T) {
	path := writeTestCSV(t)
	for _, algo := range []string{"qar", "sa96"} {
		var buf bytes.Buffer
		// Two equi-depth partitions align with the two planted bands, so
		// the SA96 baseline finds confident range rules.
		err := run(&buf, path, runConfig{algo: algo, d0: 2000, minsup: 0.1, degree: 1, minconf: 0.8, metric: "D2", nparts: 2, top: 5})
		if err != nil {
			t.Fatalf("run(%s): %v", algo, err)
		}
		if !strings.Contains(buf.String(), "⇒") {
			t.Errorf("%s printed no rules:\n%s", algo, buf.String())
		}
	}
}

func TestRunTopTruncation(t *testing.T) {
	path := writeTestCSV(t)
	var buf bytes.Buffer
	if err := run(&buf, path, runConfig{algo: "dar", d0: 2000, minsup: 0.1, degree: 1, minconf: 0.6, metric: "D2", memory: 0, nparts: 10, top: 1, asJSON: false}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "more rules") {
		t.Errorf("top=1 did not truncate:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestCSV(t)
	var buf bytes.Buffer
	if err := run(&buf, filepath.Join(t.TempDir(), "missing.csv"), runConfig{algo: "dar", d0: 1, minsup: 0.1, degree: 1, minconf: 0.6, metric: "D2", nparts: 10}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(&buf, path, runConfig{algo: "bogus", d0: 1, minsup: 0.1, degree: 1, minconf: 0.6, metric: "D2", memory: 0, nparts: 10, top: 0, asJSON: false}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&buf, path, runConfig{algo: "dar", d0: 1, minsup: 0.1, degree: 1, minconf: 0.6, metric: "D9", memory: 0, nparts: 10, top: 0, asJSON: false}); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestRunClassical(t *testing.T) {
	path := writeTestCSV(t)
	var buf bytes.Buffer
	if err := run(&buf, path, runConfig{algo: "classical", d0: 0, minsup: 0.2, degree: 1, minconf: 0.8, metric: "D2", memory: 0, nparts: 10, top: 0, asJSON: false}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "exact: true") {
		t.Errorf("unlimited classical should be exact:\n%s", out)
	}
	// A tight byte budget forces collapses.
	buf.Reset()
	if err := run(&buf, path, runConfig{algo: "classical", d0: 0, minsup: 0.2, degree: 1, minconf: 0.8, metric: "D2", memory: 400, nparts: 10, top: 0, asJSON: false}); err != nil {
		t.Fatalf("run(budget): %v", err)
	}
	if !strings.Contains(buf.String(), "exact: false") {
		t.Errorf("budgeted classical stayed exact:\n%s", buf.String())
	}
}

func TestMaxEntriesFromBudget(t *testing.T) {
	if got := maxEntriesFromBudget(0, 5); got != 0 {
		t.Errorf("unlimited = %d", got)
	}
	if got := maxEntriesFromBudget(8000, 2); got != 100 {
		t.Errorf("budgeted = %d, want 100", got)
	}
	if got := maxEntriesFromBudget(10, 5); got != 2 {
		t.Errorf("floor = %d, want 2", got)
	}
}

func TestRunDARAutoThreshold(t *testing.T) {
	path := writeTestCSV(t)
	var buf bytes.Buffer
	// d0 = 0 derives per-attribute thresholds from the data.
	if err := run(&buf, path, runConfig{algo: "dar", d0: 0, minsup: 0.1, degree: 1, minconf: 0.6, metric: "D2", memory: 0, nparts: 10, top: 0, asJSON: false}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "derived d0 per attribute") {
		t.Errorf("no derivation notice:\n%s", out)
	}
	if !strings.Contains(out, "⇒") {
		t.Errorf("no rules with derived thresholds:\n%s", out)
	}
}

func TestParseGroups(t *testing.T) {
	schema := dar.MustSchema(
		dar.Attribute{Name: "lat", Kind: dar.Interval},
		dar.Attribute{Name: "lon", Kind: dar.Interval},
		dar.Attribute{Name: "price", Kind: dar.Interval},
	)
	part, err := parseGroups(schema, "lat+lon")
	if err != nil {
		t.Fatalf("parseGroups: %v", err)
	}
	if part.NumGroups() != 2 {
		t.Fatalf("groups = %d, want 2", part.NumGroups())
	}
	if part.Group(0).Dims() != 2 || part.Group(1).Name != "price" {
		t.Errorf("groups = %+v, %+v", part.Group(0), part.Group(1))
	}
	if _, err := parseGroups(schema, "lat+bogus"); err == nil {
		t.Error("unknown attribute accepted")
	}
	// Empty spec: singletons.
	part, err = parseGroups(schema, " ")
	if err != nil || part.NumGroups() != 3 {
		t.Errorf("empty spec: %v, %v", part, err)
	}
	// Duplicate attribute across groups rejected by partitioning.
	if _, err := parseGroups(schema, "lat,lat+lon"); err == nil {
		t.Error("duplicate attribute accepted")
	}
}
