package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles starts a CPU profile when cpuPath is non-empty and
// returns a stop function that ends it and, when memPath is non-empty,
// writes a heap profile. Both the mining mode and the ingest subcommand
// route their -cpuprofile/-memprofile flags through here so the two
// entry points profile identically. The stop function must run after
// the measured work and before the process exits.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// A GC right before the snapshot makes the heap profile
			// reflect live data rather than collection timing.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
