package main

import (
	"reflect"
	"testing"
)

func TestSplitWorkers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , ,", nil},
		{"http://a:1", []string{"http://a:1"}},
		{"http://a:1, http://b:2 ,", []string{"http://a:1", "http://b:2"}},
	} {
		if got := splitWorkers(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitWorkers(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRunRequiresWorkers(t *testing.T) {
	if got := run([]string{"-addr", "127.0.0.1:0", "-data", t.TempDir()}); got != 2 {
		t.Errorf("run without -workers = %d, want exit 2", got)
	}
}
