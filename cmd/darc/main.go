// Command darc runs the DAR cluster coordinator: a dard daemon with a
// dispatch layer that shards big ingests across a pool of worker
// dards, folds the shard summaries deterministically and serves the
// merged result (see internal/cluster and DESIGN.md §14).
//
// Usage:
//
//	darc -addr :8345 -data /var/lib/darc \
//	     -workers http://w1:8344,http://w2:8344 -replicate
//
// Every non-cluster route (catalog, query, merge, snapshot) is served
// by the embedded dard; the process drains gracefully on
// SIGINT/SIGTERM exactly like dard does.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("darc", flag.ExitOnError)
	addr := fs.String("addr", ":8345", "listen address")
	data := fs.String("data", "./darc-data", "data dir holding merged .acfsum artifacts")
	workers := fs.String("workers", "", "comma-separated worker base URLs (required), e.g. http://w1:8344,http://w2:8344")
	shards := fs.Int("shards", 0, "default shards per ingest (0 = one per worker; pin it for byte-identical ingests across pool sizes)")
	maxAttempts := fs.Int("max-attempts", 0, "tries per shard before the ingest fails (0 = 3)")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-attempt shard budget (0 = 2m)")
	backoff := fs.Duration("backoff", 0, "base requeue backoff (0 = 50ms)")
	backoffCap := fs.Duration("backoff-cap", 0, "backoff ceiling (0 = 2s)")
	healthInterval := fs.Duration("health-interval", 0, "health probe period for downed workers (0 = 1s)")
	seed := fs.Int64("seed", 0, "backoff jitter seed (0 = fixed default)")
	replicate := fs.Bool("replicate", false, "push every merged artifact to all healthy workers")
	catalogBytes := fs.Int64("catalog-bytes", 0, "in-memory byte budget for loaded summaries (0 = 1GiB, <0 = unlimited)")
	cacheBytes := fs.Int64("cache-bytes", 0, "result cache byte budget (0 = 64MiB, <0 = disabled)")
	timeout := fs.Duration("timeout", 0, "per-query execution budget (0 = 30s)")
	maxIngestBytes := fs.Int64("max-ingest-bytes", 0, "ingest/merge body limit (0 = 256MiB)")
	storageKind := fs.String("storage", "flat", "storage backend: flat or segment")
	drain := fs.Duration("drain", 15*time.Second, "graceful shutdown budget for in-flight requests")
	fs.Parse(args)

	logger := log.New(os.Stderr, "darc: ", log.LstdFlags)
	pool := splitWorkers(*workers)
	if len(pool) == 0 {
		logger.Print("at least one -workers URL is required")
		return 2
	}

	srv, notes, err := server.New(server.Config{
		DataDir:        *data,
		CatalogBytes:   *catalogBytes,
		CacheBytes:     *cacheBytes,
		QueryTimeout:   *timeout,
		MaxIngestBytes: *maxIngestBytes,
		Storage:        *storageKind,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer func() {
		if err := srv.Close(); err != nil {
			logger.Printf("closing storage: %v", err)
		}
	}()
	for _, n := range notes {
		logger.Print(n)
	}

	coord, err := cluster.New(cluster.Config{
		Workers:        pool,
		Shards:         *shards,
		MaxAttempts:    *maxAttempts,
		ShardTimeout:   *shardTimeout,
		BackoffBase:    *backoff,
		BackoffCap:     *backoffCap,
		HealthInterval: *healthInterval,
		Seed:           *seed,
		Replicate:      *replicate,
		MaxIngestBytes: *maxIngestBytes,
	}, srv)
	if err != nil {
		logger.Print(err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Print(err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// The smoke script greps for this line to learn the bound port.
	logger.Printf("listening on %s (data dir %s, %d workers)", ln.Addr(), *data, len(pool))

	// Background prober marks recovered workers back up between
	// ingests; it stops when the drain begins.
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	go coord.Run(probeCtx)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Print(err)
		return 1
	case sig := <-stop:
		logger.Printf("caught %v, draining for up to %v", sig, *drain)
		stopProbes()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
			return 1
		}
	}
	fmt.Fprintln(os.Stderr, "darc: bye")
	return 0
}

// splitWorkers parses the -workers list, dropping empty entries.
func splitWorkers(spec string) []string {
	var out []string
	for _, w := range strings.Split(spec, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}
